package jobs_test

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro"
	"repro/internal/jobs"
	"repro/internal/workload"
)

func newManager(t *testing.T, cfg jobs.Config) *jobs.Manager {
	t.Helper()
	if cfg.Service == nil {
		cfg.Service = repro.NewService(nil, 256)
	}
	m := jobs.New(cfg)
	t.Cleanup(m.Close)
	return m
}

// hardTree is an instance branch-and-bound cannot close quickly: large
// enough that an unconstrained exact search outlives any test timeout.
func hardTree() *repro.Tree {
	return workload.Random(rand.New(rand.NewSource(1)), workload.DefaultRandomSpec(64, 4))
}

// mediumTree solves exactly in a few hundred milliseconds unconstrained —
// long enough for a 50ms deadline to bind with a wide margin.
func mediumTree() *repro.Tree {
	return workload.Random(rand.New(rand.NewSource(1)), workload.DefaultRandomSpec(40, 3))
}

func TestJobLifecycleDone(t *testing.T) {
	m := newManager(t, jobs.Config{SelfTag: "n0"})
	j, err := m.Submit(jobs.Request{Tree: workload.Epilepsy(), Seed: 3})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if got := j.Wait(t.Context(), 5*time.Second); got != jobs.StateDone {
		t.Fatalf("state = %v, want done", got)
	}
	st := j.Snapshot()
	if st.Result == nil || !st.Result.Exact {
		t.Fatalf("want exact result, got %+v", st.Result)
	}
	if st.Gap() != 0 {
		t.Fatalf("exact result gap = %v, want 0", st.Gap())
	}
	if len(st.Incumbents) == 0 {
		t.Fatal("no incumbents recorded")
	}
	if !st.Planned || st.Plan.Reason == "" {
		t.Fatalf("job carries no plan: %+v", st.Plan)
	}
	if got, want := st.ID[:3], "n0-"; got != want {
		t.Fatalf("ID %q not tag-prefixed", st.ID)
	}
	stats := m.Stats()
	if stats.Submitted != 1 || stats.Completed != 1 || stats.Live != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestJobDeadlinePartialVsExact is the job-tier acceptance: the same
// instance with a deadline far under its exact solve time finishes done
// with a feasible partial result and a reported bound gap; without a
// deadline it reaches the proven optimum.
func TestJobDeadlinePartialVsExact(t *testing.T) {
	tree := mediumTree()
	m := newManager(t, jobs.Config{Workers: 1})

	// The deadline job runs first, against a cold bound cache, so the
	// 50ms deadline genuinely truncates the search; submitted after the
	// unconstrained job it would replay that job's recorded optimum from
	// the manager's shared bound cache and come back exact instantly.
	rushed, err := m.Submit(jobs.Request{
		Tree: tree, Algorithm: repro.BranchBound, Budget: 1 << 28,
		Deadline: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if got := rushed.Wait(t.Context(), 10*time.Second); got != jobs.StateDone {
		t.Fatalf("deadline job state = %v", got)
	}
	st := rushed.Snapshot()

	full, err := m.Submit(jobs.Request{Tree: tree, Algorithm: repro.BranchBound, Budget: 1 << 28})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if got := full.Wait(t.Context(), time.Minute); got != jobs.StateDone {
		t.Fatalf("unconstrained job state = %v", got)
	}
	exact := full.Snapshot()
	if exact.Result == nil || !exact.Result.Exact || exact.Result.Partial {
		t.Fatalf("unconstrained job not exact: %+v", exact.Result)
	}
	if st.Result == nil || !st.Result.Partial {
		t.Fatalf("deadline job should be partial: %+v", st.Result)
	}
	if st.Result.Assignment == nil {
		t.Fatal("partial result carries no assignment")
	}
	if _, err := repro.Evaluate(tree, st.Result.Assignment); err != nil {
		t.Fatalf("partial assignment infeasible: %v", err)
	}
	if st.Result.LowerBound <= 0 || st.Gap() < 0 {
		t.Fatalf("partial result must report a bound gap: lb=%v gap=%v", st.Result.LowerBound, st.Gap())
	}
	if st.Result.Delay < exact.Result.Delay-1e-9 {
		t.Fatalf("partial %v beats proven optimum %v", st.Result.Delay, exact.Result.Delay)
	}
	if st.Finished.Sub(st.Submitted) > 5*time.Second {
		t.Fatalf("deadline job ran %v", st.Finished.Sub(st.Submitted))
	}
}

func TestJobCancelRunningStopsPromptly(t *testing.T) {
	before := runtime.NumGoroutine()
	svc := repro.NewService(nil, 16)
	m := jobs.New(jobs.Config{Service: svc, Workers: 1})

	j, err := m.Submit(jobs.Request{Tree: hardTree(), Algorithm: repro.BranchBound, Budget: 1 << 40})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for j.State() != jobs.StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %v", j.State())
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	j.Cancel()
	if got := j.Wait(t.Context(), 5*time.Second); got != jobs.StateCanceled {
		t.Fatalf("state = %v, want canceled", got)
	}
	if took := time.Since(start); took > 3*time.Second {
		t.Fatalf("cancel took %v to stop the solver", took)
	}
	if st := m.Stats(); st.Canceled != 1 || st.Running != 0 {
		t.Fatalf("stats = %+v", st)
	}

	// No goroutine may outlive the manager: the canceled solver and the
	// workers must all have exited.
	m.Close()
	for end := time.Now().Add(3 * time.Second); ; {
		runtime.GC()
		if runtime.NumGoroutine() <= before+1 {
			break
		}
		if time.Now().After(end) {
			t.Fatalf("goroutine leak: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestJobCancelWhileQueued(t *testing.T) {
	m := newManager(t, jobs.Config{Workers: 1})
	blocker, err := m.Submit(jobs.Request{Tree: hardTree(), Algorithm: repro.BranchBound, Budget: 1 << 40})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	queued, err := m.Submit(jobs.Request{Tree: workload.Epilepsy()})
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}
	queued.Cancel()
	if got := queued.State(); got != jobs.StateCanceled {
		t.Fatalf("queued cancel: state = %v", got)
	}
	blocker.Cancel()
	if got := blocker.Wait(t.Context(), 5*time.Second); got != jobs.StateCanceled {
		t.Fatalf("blocker state = %v", got)
	}
	if st := m.Stats(); st.Canceled != 2 {
		t.Fatalf("canceled = %d, want 2", st.Canceled)
	}
}

func TestJobQueueFullAndExpiry(t *testing.T) {
	m := newManager(t, jobs.Config{Workers: 1, QueueDepth: 1})
	blocker, err := m.Submit(jobs.Request{Tree: hardTree(), Algorithm: repro.BranchBound, Budget: 1 << 40})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	// Give the single worker a beat to dequeue the blocker, freeing the slot.
	deadline := time.Now().Add(5 * time.Second)
	for blocker.State() != jobs.StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}
	doomed, err := m.Submit(jobs.Request{Tree: workload.Epilepsy(), Deadline: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("Submit doomed: %v", err)
	}
	if _, err := m.Submit(jobs.Request{Tree: workload.Epilepsy()}); err != jobs.ErrQueueFull {
		t.Fatalf("overflow submit err = %v, want ErrQueueFull", err)
	}
	// Burn the doomed job's whole deadline in the queue, then free the
	// worker: it must expire the job rather than run it.
	time.Sleep(30 * time.Millisecond)
	blocker.Cancel()
	if got := doomed.Wait(t.Context(), 5*time.Second); got != jobs.StateExpired {
		t.Fatalf("doomed state = %v, want expired", got)
	}
	if st := m.Stats(); st.Expired != 1 {
		t.Fatalf("expired = %d, want 1", st.Expired)
	}
}

func TestJobTTLReap(t *testing.T) {
	m := newManager(t, jobs.Config{ResultTTL: time.Millisecond})
	j, err := m.Submit(jobs.Request{Tree: workload.Epilepsy()})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if got := j.Wait(t.Context(), 5*time.Second); got != jobs.StateDone {
		t.Fatalf("state = %v", got)
	}
	time.Sleep(5 * time.Millisecond)
	st := m.Stats() // Stats reaps
	if st.Reaped != 1 || st.Live != 0 {
		t.Fatalf("stats after TTL = %+v", st)
	}
	if _, ok := m.Get(j.ID); ok {
		t.Fatal("reaped job still resolvable")
	}
}

func TestJobPortfolio(t *testing.T) {
	m := newManager(t, jobs.Config{Workers: 2})
	j, err := m.Submit(jobs.Request{
		Tree: mediumTree(), Portfolio: true, Seed: 5,
		Deadline: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if got := j.Wait(t.Context(), 30*time.Second); got != jobs.StateDone {
		t.Fatalf("state = %v", got)
	}
	st := j.Snapshot()
	if !st.Plan.Portfolio || st.Plan.Heuristic == "" {
		t.Fatalf("plan did not race: %+v", st.Plan)
	}
	if st.Result == nil || st.Result.Assignment == nil {
		t.Fatalf("portfolio returned no result: %+v", st.Result)
	}
	if len(st.Incumbents) == 0 {
		t.Fatal("portfolio streamed no incumbents")
	}
}

func TestIncumbentRingEviction(t *testing.T) {
	m := newManager(t, jobs.Config{RingSize: 2})
	j, err := m.Submit(jobs.Request{Tree: mediumTree(), Algorithm: repro.Annealing, Seed: 1})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if got := j.Wait(t.Context(), 30*time.Second); got != jobs.StateDone {
		t.Fatalf("state = %v", got)
	}
	st := j.Snapshot()
	if len(st.Incumbents) > 2 {
		t.Fatalf("ring exceeded its bound: %d entries", len(st.Incumbents))
	}
	if st.NextSeq < len(st.Incumbents) {
		t.Fatalf("NextSeq %d inconsistent with %d retained", st.NextSeq, len(st.Incumbents))
	}
	// The retained tail must be the newest entries.
	if n := len(st.Incumbents); n > 0 && st.Incumbents[n-1].Seq != st.NextSeq-1 {
		t.Fatalf("ring did not keep the newest: %+v", st.Incumbents)
	}
}

func TestPlannerPolicy(t *testing.T) {
	p := jobs.DefaultPlanner()
	cases := []struct {
		name      string
		f         jobs.Features
		alg       repro.Algorithm
		portfolio bool
	}{
		{"small exact", jobs.Features{Nodes: 10, Colours: 2}, repro.BranchBound, false},
		{"rush heuristic", jobs.Features{Nodes: 60, Colours: 2, Deadline: 5 * time.Millisecond}, repro.Annealing, false},
		{"rush many colours", jobs.Features{Nodes: 60, Colours: 4, Deadline: 5 * time.Millisecond}, repro.Genetic, false},
		{"backlog sheds", jobs.Features{Nodes: 60, Colours: 2, QueueDepth: 64}, repro.Annealing, false},
		{"deadline races", jobs.Features{Nodes: 60, Colours: 2, Deadline: time.Second}, repro.ParallelBnB, true},
		{"deadline races mid-size sequential", jobs.Features{Nodes: 40, Colours: 2, Deadline: time.Second}, repro.BranchBound, true},
		{"explicit portfolio", jobs.Features{Nodes: 60, Colours: 2, Portfolio: true}, repro.ParallelBnB, true},
		{"explicit portfolio on small instance", jobs.Features{Nodes: 10, Colours: 2, Portfolio: true}, repro.BranchBound, true},
		{"no deadline mid-size exact", jobs.Features{Nodes: 40, Colours: 2}, repro.BranchBound, false},
		{"no deadline large goes parallel", jobs.Features{Nodes: 60, Colours: 2}, repro.ParallelBnB, false},
		{"pinned", jobs.Features{Nodes: 60, Colours: 2, Algorithm: repro.Genetic}, repro.Genetic, false},
	}
	for _, tc := range cases {
		plan := p.Plan(tc.f)
		if plan.Algorithm != tc.alg || plan.Portfolio != tc.portfolio {
			t.Errorf("%s: plan = %s portfolio=%v, want %s/%v (reason %q)",
				tc.name, plan.Algorithm, plan.Portfolio, tc.alg, tc.portfolio, plan.Reason)
		}
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	m := jobs.New(jobs.Config{Service: repro.NewService(nil, 16)})
	m.Close()
	if _, err := m.Submit(jobs.Request{Tree: workload.Epilepsy()}); err != jobs.ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}
