package jobs

import (
	"time"

	"repro"
)

// Features are the instance and queue signals the Planner decides from.
type Features struct {
	// Nodes is the CRU count (processing + sensors).
	Nodes int
	// Colours is the number of satellites.
	Colours int
	// Warm reports a warm-start hint on the request.
	Warm bool
	// Deadline is the job's remaining time budget (0 = none).
	Deadline time.Duration
	// QueueDepth is the number of jobs waiting behind this one.
	QueueDepth int
	// Algorithm, when non-empty, pins the solver (the planner only fills
	// in budget and portfolio defaults around it).
	Algorithm repro.Algorithm
	// Portfolio reports an explicit portfolio request.
	Portfolio bool
}

// FeaturesOf extracts the planning features of one request.
func FeaturesOf(req Request, queueDepth int) Features {
	f := Features{
		Warm:       req.Warm != nil,
		Deadline:   req.Deadline,
		QueueDepth: queueDepth,
		Algorithm:  req.Algorithm,
		Portfolio:  req.Portfolio,
	}
	if t := req.Tree; t != nil {
		f.Nodes = len(t.Preorder())
		f.Colours = len(t.Satellites())
	}
	return f
}

// Plan is the planner's decision: which algorithm to run, under what
// budget, and whether to race it against a heuristic.
type Plan struct {
	// Algorithm is the primary solver (the exact lane in portfolio mode).
	Algorithm repro.Algorithm
	// Budget caps the primary solver's exploration (0 = its default).
	Budget int
	// Portfolio races Algorithm against Heuristic.
	Portfolio bool
	// Heuristic is the racing lane of portfolio mode.
	Heuristic repro.Algorithm
	// GapThreshold ends the race early once the best incumbent's delay is
	// within this relative distance of the best proven lower bound.
	GapThreshold float64
	// Reason is a one-line explanation for introspection.
	Reason string
}

// Planner is the metareasoning front-end: it trades deadline against
// solution quality by picking the algorithm and budget per instance, in
// the spirit of Zilberstein & Chien's metareasoning layer and HS-CAI's
// search-plus-inference portfolios.
type Planner struct {
	// SmallNodes is the instance size solved exact-with-generous-budget
	// regardless of deadline (branch-and-bound finishes in microseconds
	// there). Default 24.
	SmallNodes int
	// RushDeadline is the deadline under which planning skips straight to
	// a heuristic (an exact search would spend its whole budget proving
	// bounds). Default 10ms.
	RushDeadline time.Duration
	// DeepQueue is the backlog at which effort is shed onto heuristics
	// even without a tight deadline. Default 32.
	DeepQueue int
	// GapThreshold is the portfolio acceptance gap. Default 0.02.
	GapThreshold float64
	// ParallelNodes is the instance size from which the exact lane runs
	// the work-stealing parallel branch-and-bound instead of the
	// sequential one: a search that large is the only job a core will see
	// for a while, so saturating the node with one solve beats keeping
	// cores free for queue parallelism. Default 48.
	ParallelNodes int
}

// DefaultPlanner returns the stock policy.
func DefaultPlanner() *Planner {
	return &Planner{
		SmallNodes:    24,
		RushDeadline:  10 * time.Millisecond,
		DeepQueue:     32,
		GapThreshold:  0.02,
		ParallelNodes: 48,
	}
}

// Plan decides one request. Pinned algorithms are honoured as-is (with a
// portfolio around them only on explicit request), and an explicit
// portfolio request always races — on instances the exact lane wins
// instantly the race just ends early. Otherwise the policy is: small
// instances solve exactly, rushed or backlogged requests run the
// annealer, deadline-bearing large instances race branch-and-bound
// against a population heuristic, and everything else gets the exact
// solver with an effort budget scaled to the queue.
func (p *Planner) Plan(f Features) Plan {
	heur := repro.Annealing
	if f.Colours >= 3 && f.Nodes >= p.SmallNodes {
		// Many colours widen the cut space; the genetic population
		// explores it better than a single annealing walk.
		heur = repro.Genetic
	}
	// The exact lane: sequential branch-and-bound for mid-size searches,
	// the work-stealing parallel one once the instance is large enough to
	// dominate a node anyway. The two return the same delay, so the switch
	// is pure wall-time policy.
	exact := repro.BranchBound
	if f.Nodes >= p.ParallelNodes {
		exact = repro.ParallelBnB
	}

	if f.Algorithm != "" {
		plan := Plan{Algorithm: f.Algorithm, Reason: "algorithm pinned by request"}
		if f.Portfolio {
			plan.Portfolio = true
			plan.Heuristic = heur
			plan.GapThreshold = p.GapThreshold
			plan.Reason = "portfolio pinned by request"
		}
		return plan
	}

	if f.Portfolio {
		return Plan{
			Algorithm:    exact,
			Portfolio:    true,
			Heuristic:    heur,
			GapThreshold: p.GapThreshold,
			Reason:       "portfolio requested: racing exact vs heuristic",
		}
	}

	switch {
	case f.Nodes <= p.SmallNodes:
		return Plan{
			Algorithm: repro.BranchBound,
			Budget:    1 << 22,
			Reason:    "small instance: exact branch-and-bound",
		}
	case f.Deadline > 0 && f.Deadline <= p.RushDeadline:
		return Plan{
			Algorithm: heur,
			Reason:    "deadline too tight for exact search: heuristic only",
		}
	case f.QueueDepth >= p.DeepQueue:
		return Plan{
			Algorithm: heur,
			Reason:    "queue backlog: shedding effort onto heuristic",
		}
	case f.Deadline > 0:
		return Plan{
			Algorithm:    exact,
			Portfolio:    true,
			Heuristic:    heur,
			GapThreshold: p.GapThreshold,
			Reason:       "large instance under deadline: racing exact vs heuristic",
		}
	default:
		return Plan{
			Algorithm: exact,
			Reason:    "no deadline: exact branch-and-bound",
		}
	}
}
