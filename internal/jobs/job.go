package jobs

import (
	"context"
	"sync"
	"time"

	"repro"
)

// Job is one submitted solve with its progress ring. All fields behind mu;
// the exported surface hands out copies.
type Job struct {
	ID string
	m  *Manager

	req       Request
	submitted time.Time

	mu       sync.Mutex
	state    State
	plan     Plan
	planned  bool
	started  time.Time
	finished time.Time
	result   *repro.Outcome
	err      error
	cancelFn context.CancelFunc
	canceled bool // cancel requested (maybe before a terminal state landed)

	ring    []Incumbent // last RingSize improvements, oldest first
	nextSeq int

	notify chan struct{} // closed and replaced on every observable change
	done   chan struct{} // closed once, on reaching a terminal state
}

// Status is a point-in-time copy of a job's observable state.
type Status struct {
	ID        string
	State     State
	Request   Request
	Plan      Plan
	Planned   bool
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	// Incumbents is the retained tail of the progress ring, oldest first.
	Incumbents []Incumbent
	// NextSeq is the sequence number the next incumbent will get; an SSE
	// consumer resumes from the last Seq it saw.
	NextSeq int
	// Result is set in StateDone.
	Result *repro.Outcome
	// Err is set in StateFailed (and carries the cause for canceled and
	// expired jobs when one exists).
	Err error
}

// Gap reports the result's relative bound gap: 0 for a proven optimum,
// (delay-bound)/bound for a partial result with a bound, -1 otherwise.
func (st Status) Gap() float64 {
	if st.Result == nil {
		return -1
	}
	if st.Result.Exact {
		return 0
	}
	if lb := st.Result.LowerBound; lb > 0 {
		return (st.Result.Delay - lb) / lb
	}
	return -1
}

// Snapshot copies the job's observable state.
func (j *Job) Snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:         j.ID,
		State:      j.state,
		Request:    j.req,
		Plan:       j.plan,
		Planned:    j.planned,
		Submitted:  j.submitted,
		Started:    j.started,
		Finished:   j.finished,
		Incumbents: append([]Incumbent(nil), j.ring...),
		NextSeq:    j.nextSeq,
		Result:     j.result,
		Err:        j.err,
	}
}

// Tree returns the job's problem instance.
func (j *Job) Tree() *repro.Tree { return j.req.Tree }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Changed returns a channel closed at the next observable change (new
// incumbent, state transition). Callers re-arm by calling it again.
func (j *Job) Changed() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.notify
}

// IncumbentsSince returns the retained incumbents with Seq >= seq, oldest
// first. Entries that fell out of the ring are gone; the first returned
// Seq tells the consumer how much it missed.
func (j *Job) IncumbentsSince(seq int) []Incumbent {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, inc := range j.ring {
		if inc.Seq >= seq {
			return append([]Incumbent(nil), j.ring[i:]...)
		}
	}
	return nil
}

// Cancel requests cancellation: a queued job terminates immediately, a
// running one has its context canceled and terminates when the solver
// returns. Terminal jobs are untouched.
func (j *Job) Cancel() {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.canceled = true
	cancel := j.cancelFn
	if j.state == StateQueued {
		// The worker that eventually dequeues it sees the terminal state
		// and skips it.
		j.finishLocked(StateCanceled, nil, context.Canceled)
		j.m.canceled.Add(1)
		j.mu.Unlock()
		return
	}
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// CancelRequested reports whether Cancel was called.
func (j *Job) CancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.canceled
}

// Wait blocks until the job is terminal, ctx expires, or — when wait > 0 —
// that duration passes. It returns the state at the time it unblocked.
func (j *Job) Wait(ctx context.Context, wait time.Duration) State {
	var timeout <-chan time.Time
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-j.done:
	case <-ctx.Done():
	case <-timeout:
	}
	return j.State()
}

// start moves queued → running, installing the cancel hook. It reports
// false when the job is no longer runnable (canceled while queued).
func (j *Job) start(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancelFn = cancel
	j.notifyLocked()
	return true
}

// setPlan records the planner's decision for introspection.
func (j *Job) setPlan(p Plan) {
	j.mu.Lock()
	j.plan = p
	j.planned = true
	j.notifyLocked()
	j.mu.Unlock()
}

// record appends one incumbent to the ring, evicting the oldest entry
// past the capacity, and wakes watchers. It runs on the solver goroutine.
func (j *Job) record(alg repro.Algorithm, inc repro.Incumbent) {
	j.mu.Lock()
	entry := Incumbent{
		Seq:        j.nextSeq,
		Algorithm:  alg,
		Delay:      inc.Delay,
		LowerBound: inc.LowerBound,
		Work:       inc.Work,
		Elapsed:    time.Since(j.submitted),
	}
	j.nextSeq++
	if len(j.ring) >= j.m.cfg.RingSize {
		copy(j.ring, j.ring[1:])
		j.ring = j.ring[:len(j.ring)-1]
	}
	j.ring = append(j.ring, entry)
	j.notifyLocked()
	j.mu.Unlock()
}

// transition moves from → to with the given result, returning whether the
// transition happened (false when the state already moved elsewhere, e.g.
// a cancel landed first).
func (j *Job) transition(from, to State, out *repro.Outcome, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != from {
		return false
	}
	j.finishLocked(to, out, err)
	return true
}

func (j *Job) finishLocked(to State, out *repro.Outcome, err error) {
	j.state = to
	j.result = out
	j.err = err
	j.finished = time.Now()
	j.notifyLocked()
	if to.Terminal() {
		close(j.done)
	}
}

// notifyLocked wakes every watcher by closing the current notify channel
// and arming a fresh one. Callers hold j.mu.
func (j *Job) notifyLocked() {
	close(j.notify)
	j.notify = make(chan struct{})
}
