package chain

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestValidate(t *testing.T) {
	cases := []Problem{
		{},
		{Weights: []float64{1}, K: 0},
		{Weights: []float64{1, 2}, Comm: []float64{1, 2}, K: 1},
		{Weights: []float64{-1}, K: 1},
		{Weights: []float64{1}, Comm: nil, K: 1},
		{Weights: []float64{1, 2}, Comm: []float64{math.NaN()}, K: 1},
	}
	wantErr := []bool{true, true, true, true, false, true}
	for i, p := range cases {
		if gotErr := p.Validate() != nil; gotErr != wantErr[i] {
			t.Errorf("case %d: err=%v, want err=%v", i, p.Validate(), wantErr[i])
		}
	}
}

func TestHandComputed(t *testing.T) {
	// Weights 3 1 4 1 5, no comm, K=3: optimum 5 ([3 1] [4 1] [5]).
	p := &Problem{Weights: []float64{3, 1, 4, 1, 5}, K: 3}
	for name, solve := range solvers() {
		r, err := solve(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !almost(r.Bottleneck, 5) {
			t.Errorf("%s: bottleneck %v, want 5", name, r.Bottleneck)
		}
	}
}

func TestSingleProcessor(t *testing.T) {
	p := &Problem{Weights: []float64{2, 3, 4}, Comm: []float64{10, 10}, K: 1}
	for name, solve := range solvers() {
		r, err := solve(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !almost(r.Bottleneck, 9) || len(r.Breaks) != 0 {
			t.Errorf("%s: %v / %v, want 9 with no breaks", name, r.Bottleneck, r.Breaks)
		}
	}
}

func TestCommMakesFewerSegmentsBetter(t *testing.T) {
	// Splitting costs 100 on either side of the cut; the optimum keeps the
	// chain whole even with K=3.
	p := &Problem{Weights: []float64{5, 5, 5}, Comm: []float64{100, 100}, K: 3}
	for name, solve := range solvers() {
		r, err := solve(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !almost(r.Bottleneck, 15) {
			t.Errorf("%s: bottleneck %v, want 15 (unsplit)", name, r.Bottleneck)
		}
	}
}

// TestGreedyProbeCounterexample documents why the probe uses a DP pass
// rather than greedy maximal extension: on this instance the maximal first
// segment [0,2) forces the second segment to pay the expensive entering
// link (80), while the feasible partition stops earlier.
func TestGreedyProbeCounterexample(t *testing.T) {
	p := &Problem{
		Weights: []float64{20, 0, 90, 10},
		Comm:    []float64{0, 80, 10},
		K:       3,
	}
	const limit = 100.0
	// The instance IS feasible under the limit: [0,1)=20, [1,3)=0+90+10=100, [3,4)=20.
	breaks, ok := p.feasible(limit)
	if !ok {
		t.Fatalf("DP probe must find the feasible partition")
	}
	if got := p.check(breaks); got > limit {
		t.Fatalf("probe returned partition with bottleneck %v > %v", got, limit)
	}
	// Greedy maximal extension would have chosen [0,2) first (load 20+80 =
	// 100 fits) and then be stuck: [2,?] starts with entering comm 80 and
	// task 90. Verify that dead end is real.
	if w := p.segmentWeight(2, 3); w <= limit {
		t.Fatalf("counterexample broken: segment [2,3) weighs %v", w)
	}
	if w := p.segmentWeight(2, 4); w <= limit {
		t.Fatalf("counterexample broken: segment [2,4) weighs %v", w)
	}
}

func solvers() map[string]func(*Problem) (*Result, error) {
	return map[string]func(*Problem) (*Result, error){
		"dp":    DP,
		"probe": Probe,
		"dwg":   DWG,
	}
}

func TestSolversAgreeProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80}
	f := func(seed int64, nRaw, kRaw uint8, withComm bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%10
		k := 1 + int(kRaw)%5
		p := &Problem{Weights: make([]float64, n), K: k}
		for i := range p.Weights {
			p.Weights[i] = float64(rng.Intn(20))
		}
		if withComm && n > 1 {
			p.Comm = make([]float64, n-1)
			for i := range p.Comm {
				p.Comm[i] = float64(rng.Intn(15))
			}
		}
		dp, err1 := DP(p)
		pr, err2 := Probe(p)
		dw, err3 := DWG(p)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		if !almost(dp.Bottleneck, pr.Bottleneck) || !almost(dp.Bottleneck, dw.Bottleneck) {
			t.Logf("n=%d k=%d w=%v c=%v: dp=%v probe=%v dwg=%v",
				n, k, p.Weights, p.Comm, dp.Bottleneck, pr.Bottleneck, dw.Bottleneck)
			return false
		}
		// Reported breaks must reproduce the reported bottleneck.
		return almost(p.check(dp.Breaks), dp.Bottleneck) &&
			almost(p.check(pr.Breaks), pr.Bottleneck) &&
			almost(p.check(dw.Breaks), dw.Bottleneck)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMatchesBruteForceProperty(t *testing.T) {
	// Enumerate all break sets on tiny chains.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(7)
		k := 1 + rng.Intn(4)
		p := &Problem{Weights: make([]float64, n), K: k}
		for i := range p.Weights {
			p.Weights[i] = float64(rng.Intn(20))
		}
		if n > 1 && trial%2 == 0 {
			p.Comm = make([]float64, n-1)
			for i := range p.Comm {
				p.Comm[i] = float64(rng.Intn(15))
			}
		}
		want := bruteBest(p)
		got, err := DP(p)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(got.Bottleneck, want) {
			t.Fatalf("trial %d: DP %v != brute %v (w=%v c=%v k=%d)",
				trial, got.Bottleneck, want, p.Weights, p.Comm, k)
		}
	}
}

func bruteBest(p *Problem) float64 {
	n := len(p.Weights)
	best := math.Inf(1)
	var rec func(breaks []int, next int)
	rec = func(breaks []int, next int) {
		if len(breaks) < p.K-1 {
			for b := next; b < n; b++ {
				rec(append(append([]int(nil), breaks...), b), b+1)
			}
		}
		if v := p.check(breaks); v < best {
			best = v
		}
	}
	rec(nil, 1)
	return best
}

func BenchmarkChainSolvers(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := &Problem{Weights: make([]float64, 64), Comm: make([]float64, 63), K: 8}
	for i := range p.Weights {
		p.Weights[i] = float64(1 + rng.Intn(50))
	}
	for i := range p.Comm {
		p.Comm[i] = float64(rng.Intn(20))
	}
	b.Run("dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := DP(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("probe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Probe(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}
