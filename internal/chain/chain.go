package chain

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dwg"
)

// Problem is a chain-partitioning instance: Weights[i] is the execution
// weight of task i; Comm[i] is the communication cost paid on the link
// between task i and task i+1 when they land on different processors
// (len(Comm) == len(Weights)-1; nil means zero). K is the processor count.
type Problem struct {
	Weights []float64
	Comm    []float64
	K       int
}

// Validate checks the instance.
func (p *Problem) Validate() error {
	if len(p.Weights) == 0 {
		return errors.New("chain: empty weight vector")
	}
	if p.K < 1 {
		return fmt.Errorf("chain: K = %d", p.K)
	}
	if p.Comm != nil && len(p.Comm) != len(p.Weights)-1 {
		return fmt.Errorf("chain: %d comm entries for %d tasks", len(p.Comm), len(p.Weights))
	}
	for _, w := range p.Weights {
		if w < 0 || math.IsNaN(w) {
			return fmt.Errorf("chain: invalid weight %v", w)
		}
	}
	for _, c := range p.Comm {
		if c < 0 || math.IsNaN(c) {
			return fmt.Errorf("chain: invalid comm %v", c)
		}
	}
	return nil
}

func (p *Problem) comm(i int) float64 {
	if p.Comm == nil || i < 0 || i >= len(p.Comm) {
		return 0
	}
	return p.Comm[i]
}

// segmentWeight is the load of processor hosting tasks [a, b): the task
// weights plus the communication on both cut links (Bokhari's convention:
// a processor pays for the traffic entering and leaving its segment).
func (p *Problem) segmentWeight(a, b int) float64 {
	var w float64
	for i := a; i < b; i++ {
		w += p.Weights[i]
	}
	if a > 0 {
		w += p.comm(a - 1)
	}
	if b < len(p.Weights) {
		w += p.comm(b - 1)
	}
	return w
}

// Result is an optimal partition: Breaks[j] is the first task of segment
// j+1 (len K-1, ascending, possibly with empty segments omitted — every
// break is strictly inside the chain), and Bottleneck the max segment load.
type Result struct {
	Breaks     []int
	Bottleneck float64
}

// check recomputes the bottleneck of a break set.
func (p *Problem) check(breaks []int) float64 {
	bounds := append(append([]int{0}, breaks...), len(p.Weights))
	bottleneck := 0.0
	for j := 0; j+1 < len(bounds); j++ {
		if w := p.segmentWeight(bounds[j], bounds[j+1]); w > bottleneck {
			bottleneck = w
		}
	}
	return bottleneck
}

// DP solves the instance with the classic dynamic program:
// best[j][i] = min over split points s of max(best[j-1][s], weight(s, i)).
func DP(p *Problem) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Weights)
	k := p.K
	if k > n {
		k = n // extra processors stay idle
	}
	// prefix[i] = Σ weights[0:i] for O(1) segment sums.
	prefix := make([]float64, n+1)
	for i, w := range p.Weights {
		prefix[i+1] = prefix[i] + w
	}
	seg := func(a, b int) float64 {
		w := prefix[b] - prefix[a]
		if a > 0 {
			w += p.comm(a - 1)
		}
		if b < n {
			w += p.comm(b - 1)
		}
		return w
	}

	const inf = math.MaxFloat64
	best := make([][]float64, k+1)
	split := make([][]int, k+1)
	for j := range best {
		best[j] = make([]float64, n+1)
		split[j] = make([]int, n+1)
		for i := range best[j] {
			best[j][i] = inf
		}
	}
	best[0][0] = 0
	for j := 1; j <= k; j++ {
		for i := 1; i <= n; i++ {
			for s := j - 1; s < i; s++ {
				if best[j-1][s] == inf {
					continue
				}
				v := math.Max(best[j-1][s], seg(s, i))
				if v < best[j][i] {
					best[j][i] = v
					split[j][i] = s
				}
			}
		}
	}
	// Allowing fewer than k segments can only help when comm > 0; take the
	// best over all segment counts ≤ k.
	bestJ, bestVal := 1, best[1][n]
	for j := 2; j <= k; j++ {
		if best[j][n] < bestVal {
			bestJ, bestVal = j, best[j][n]
		}
	}
	res := &Result{Bottleneck: bestVal}
	for j, i := bestJ, n; j > 1; j-- {
		s := split[j][i]
		res.Breaks = append(res.Breaks, s)
		i = s
	}
	sort.Ints(res.Breaks)
	return res, nil
}

// Probe solves the instance by searching the candidate bottleneck values:
// feasible(B) greedily packs tasks left to right, closing a segment just
// before it would exceed B. Candidates are restricted to achievable
// segment weights, so the search is exact.
func Probe(p *Problem) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Weights)
	// Candidate values: all O(n²) segment weights. (The classic papers
	// refine this further; n is small in our benches.)
	set := map[float64]bool{}
	for a := 0; a < n; a++ {
		for b := a + 1; b <= n; b++ {
			set[p.segmentWeight(a, b)] = true
		}
	}
	candidates := make([]float64, 0, len(set))
	for v := range set {
		candidates = append(candidates, v)
	}
	sort.Float64s(candidates)

	lo, hi := 0, len(candidates)-1
	var bestBreaks []int
	found := false
	for lo <= hi {
		mid := (lo + hi) / 2
		if breaks, ok := p.feasible(candidates[mid]); ok {
			bestBreaks = breaks
			found = true
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if !found {
		return nil, fmt.Errorf("chain: no feasible bottleneck for K=%d", p.K)
	}
	return &Result{Breaks: bestBreaks, Bottleneck: p.check(bestBreaks)}, nil
}

// feasible reports whether the chain splits into at most K segments each
// weighing ≤ limit.
//
// Greedy maximal extension — the textbook probe for plain weights — is not
// exchange-safe once per-link communication costs differ (extending a
// segment to a later break can inflate the NEXT segment's entering cost;
// TestGreedyProbeCounterexample pins this down), so the probe is a
// reachability DP: minSeg[b] = fewest segments covering [0, b).
func (p *Problem) feasible(limit float64) ([]int, bool) {
	n := len(p.Weights)
	const unreached = int(^uint(0) >> 1)
	minSeg := make([]int, n+1)
	from := make([]int, n+1)
	for i := range minSeg {
		minSeg[i] = unreached
	}
	minSeg[0] = 0
	for b := 1; b <= n; b++ {
		for a := 0; a < b; a++ {
			if minSeg[a] == unreached || minSeg[a] >= p.K {
				continue
			}
			if p.segmentWeight(a, b) <= limit && minSeg[a]+1 < minSeg[b] {
				minSeg[b] = minSeg[a] + 1
				from[b] = a
			}
		}
	}
	if minSeg[n] == unreached || minSeg[n] > p.K {
		return nil, false
	}
	var breaks []int
	for b := n; b > 0; b = from[b] {
		if from[b] != 0 {
			breaks = append(breaks, from[b])
		}
	}
	sort.Ints(breaks)
	return breaks, true
}

// DWG solves the instance with Bokhari's layered doubly weighted graph:
// for each segment count k' ≤ K a graph is built whose node (j, i) means
// "segment j ends before task i"; every edge carries σ = 0 and β = the
// weight of the segment it spans, and the SB algorithm finds the
// min-bottleneck path. The best k' wins. (σ is unused by the pure
// bottleneck objective; the layered graph exists to exercise the §4
// machinery on the related problem.)
func DWG(p *Problem) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Weights)
	kMax := p.K
	if kMax > n {
		kMax = n
	}
	var best *Result
	for k := 1; k <= kMax; k++ {
		r, err := dwgExactly(p, n, k)
		if err != nil {
			return nil, err
		}
		if best == nil || r.Bottleneck < best.Bottleneck {
			best = r
		}
	}
	return best, nil
}

// dwgExactly solves for exactly k non-empty segments.
func dwgExactly(p *Problem, n, k int) (*Result, error) {
	// Node numbering: source = 0; layer j ∈ [1, k-1] holds break positions
	// (before task i ∈ [j, n-k+j]) at id 1+(j-1)*(n-1)+(i-1); sink closes
	// the last segment.
	nodeID := func(j, i int) int { return 1 + (j-1)*(n-1) + (i - 1) }
	sink := 1 + (k-1)*(n-1)
	g := dwg.New(sink + 1)
	type edgeInfo struct{ from, to int } // task range of the segment
	info := map[int]edgeInfo{}

	if k == 1 {
		id := g.AddEdge(0, sink, 0, p.segmentWeight(0, n))
		info[id] = edgeInfo{0, n}
	} else {
		for i := 1; i <= n-1; i++ {
			id := g.AddEdge(0, nodeID(1, i), 0, p.segmentWeight(0, i))
			info[id] = edgeInfo{0, i}
		}
		for j := 1; j <= k-2; j++ {
			for i := 1; i <= n-1; i++ {
				for i2 := i + 1; i2 <= n-1; i2++ {
					id := g.AddEdge(nodeID(j, i), nodeID(j+1, i2), 0, p.segmentWeight(i, i2))
					info[id] = edgeInfo{i, i2}
				}
			}
		}
		for i := 1; i <= n-1; i++ {
			id := g.AddEdge(nodeID(k-1, i), sink, 0, p.segmentWeight(i, n))
			info[id] = edgeInfo{i, n}
		}
	}
	res, err := dwg.SB(g, 0, sink)
	if err != nil {
		return nil, fmt.Errorf("chain: k=%d: %w", k, err)
	}
	out := &Result{}
	for _, id := range res.PathEdges {
		if e := info[id]; e.to < n {
			out.Breaks = append(out.Breaks, e.to)
		}
	}
	sort.Ints(out.Breaks)
	out.Bottleneck = p.check(out.Breaks)
	return out, nil
}
