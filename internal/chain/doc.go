// Package chain implements the other related-work family the paper's §2
// surveys: chain-to-chain partitioning (Bokhari 1988; improved by Hansen &
// Lih 1992, Olstad & Manne 1995, and the probe methods surveyed by Khanna
// et al.). A chain of n task weights is split into k contiguous segments,
// one per processor of a k-processor chain, minimising the bottleneck
// (maximum segment weight, communication included).
//
// Three solvers are provided and cross-validated:
//
//   - DP: the classic O(n²·k) dynamic program;
//   - Probe: the parametric method of the improved algorithms — binary
//     search over candidate bottleneck values with a feasibility probe
//     (the probe is an O(n²) reachability pass here: with heterogeneous
//     per-link communication costs the textbook greedy probe is not
//     exchange-safe, see the package tests for the counterexample);
//   - DWG: Bokhari's layered doubly weighted graph reusing this
//     repository's dwg machinery with the SB objective — demonstrating
//     that the paper's §4 toolbox solves the §2 related problems too.
package chain
