package parallel

import (
	"context"

	"repro/internal/core"
)

// The parallel solver registers itself with the core registry; importing
// this package (directly or via repro/internal/algorithms) makes it
// dispatchable by name.
func init() {
	core.Register(core.ParallelBnB, core.Capabilities{
		Exact:     true,
		Budget:    true,
		WarmStart: true,
		Anytime:   true,
		Parallel:  true,
		Bounds:    true,
		Summary:   "work-stealing parallel branch-and-bound (node budget, Request.Parallelism workers, bound memoization)",
	}, func(ctx context.Context, req core.Request) (core.Finding, error) {
		res, err := BranchAndBound(ctx, req.Tree, Options{
			Workers:     req.Parallelism,
			MaxNodes:    req.Budget,
			Warm:        req.Warm,
			OnIncumbent: req.OnIncumbent,
			BestEffort:  req.BestEffort,
			Bounds:      req.Bounds,
		})
		if err != nil {
			return core.Finding{}, err
		}
		return core.Finding{
			Assignment:  res.Assignment,
			Work:        res.Explored,
			Partial:     res.Partial,
			LowerBound:  res.LowerBound,
			Pruned:      res.Pruned,
			BoundHits:   res.BoundHits,
			BoundMisses: res.BoundMisses,
		}, nil
	})
}
