package parallel

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/boundcache"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/exact"
	"repro/internal/model"
	"repro/internal/pool"
)

// Options parameterises one work-stealing branch-and-bound run.
type Options struct {
	// Workers is the number of concurrent search workers (0 means
	// GOMAXPROCS). The worker count never changes the returned delay —
	// only the wall time and which of several co-optimal assignments is
	// reported.
	Workers int
	// MaxNodes caps the total search nodes across all workers (0 means
	// 1<<22). The cap is enforced in per-worker strides, so the final
	// explored count may overshoot by a few strides per worker.
	MaxNodes int
	// Warm optionally seeds the shared incumbent before the workers start
	// (see exact.BranchAndBoundFrom — the answer is unchanged, only the
	// first bound is tighter).
	Warm *model.Assignment
	// OnIncumbent, when set, receives every improvement of the shared
	// incumbent with a freshly cloned assignment. Calls are serialised and
	// strictly decreasing in Delay, regardless of how many workers race.
	OnIncumbent func(core.Incumbent)
	// BestEffort returns the incumbent with Result.Partial set — instead
	// of ErrBudget or the context error — when the node budget or the
	// deadline expires. The incumbent is always feasible (the baselines
	// seed it before the search starts).
	BestEffort bool
	// Bounds attaches the bound-memoization cache (see
	// exact.BnBOptions.Bounds): the sequential pre-pass runs before the
	// workers start, its per-subtree extras arm every worker's bound
	// read-only, and a proven whole instance returns without spawning
	// workers at all. Nil leaves the search bit-identical to the
	// pre-memoization solver.
	Bounds *boundcache.Cache
}

// frame is one stealable unit of search: a full snapshot of the
// sequential solver's working state (partial location vector, decision
// stack, satellite load table and the two incremental bound terms) at the
// point a branch was forked. A worker resumes a frame by running the
// plain depth-first search on it; nothing in a frame is shared.
type frame struct {
	loc             []model.Location
	stack           []int32
	loads           []float64
	exm             []float64 // prefix max of memoized extras along stack; empty when off
	hostTime        float64
	forcedRemaining float64
}

// framePool keeps frames on per-P striped free lists so fork/release
// cycles allocate nothing in steady state even with every core forking.
var framePool = pool.NewStriped(func() *frame { return new(frame) })

const (
	// lowWater: a worker forks the second branch of a decision onto its
	// deque only while the deque is shorter than this, so steady-state
	// search runs the plain sequential recursion with no synchronisation.
	lowWater = 4
	// exploredStride is how many nodes a worker explores between flushes
	// of its local counter into the shared budget counter.
	exploredStride = 64
	// ctxStride is how many nodes a worker explores between context
	// polls (matches the sequential solver's &0xff cadence).
	ctxStride = 256
)

// search is the state shared by the workers of one run.
type search struct {
	ctx  context.Context
	c    *model.Compiled
	tree *model.Tree

	// bound is the incumbent delay as IEEE-754 bits, tightened by CAS.
	// Every worker prunes against it at every node, so an improvement on
	// one core cuts the search on all of them within a few instructions.
	bound    atomic.Uint64
	explored atomic.Int64
	pruned   atomic.Int64
	maxNodes int64

	// extra is the memoized pre-pass's per-subtree bound excess table
	// (see exact.BoundSeed.Extra), read-only across the workers; nil
	// when bound memoization is off.
	extra []float64

	stop      atomic.Bool
	budgetHit atomic.Bool
	errMu     sync.Mutex
	err       error // first context error, under errMu

	// incMu serialises incumbent storage and streaming: the CAS above
	// makes pruning fast, this mutex makes the best assignment and the
	// OnIncumbent stream consistent and strictly improving.
	incMu     sync.Mutex
	best      []model.Location
	bestDelay float64
	globalLB  float64
	onInc     func(core.Incumbent)

	// Deques of stealable frames, one per worker, all under one mutex:
	// owners pop their own tail (depth-first order), thieves take a
	// victim's head (the largest remaining subtrees). Frames are rare —
	// they exist only while some deque is near-empty — so one lock is
	// cheaper than per-deque protocols and makes the empty+pending==0
	// termination test race-free.
	mu      sync.Mutex
	cond    *sync.Cond
	deques  [][]*frame
	pending int          // frames queued or being searched, under mu
	queued  atomic.Int64 // frames queued, for the fork heuristic
	dlen    []atomic.Int32
	maxLive int64
}

// worker is the per-goroutine view: its deque index plus the local node
// counters that batch updates of the shared budget counter.
type worker struct {
	s   *search
	id  int
	n   int64 // nodes explored by this worker
	pr  int64 // branches pruned by this worker, flushed on exit
	est int64 // estimated global total: shared counter at last flush + local since
}

func maxLoad(loads []float64) float64 {
	m := 0.0
	for _, v := range loads {
		if v > m {
			m = v
		}
	}
	return m
}

func (s *search) incumbent() float64 { return math.Float64frombits(s.bound.Load()) }

// improve publishes a complete assignment of delay d: the atomic bound is
// tightened first so every worker prunes against d immediately, then the
// assignment is stored and streamed under incMu. Losing a CAS race to a
// better delay abandons the publish — the better solution is already (or
// about to be) stored by its finder.
func (s *search) improve(loc []model.Location, d float64) {
	for {
		cur := s.bound.Load()
		if d >= math.Float64frombits(cur) {
			return
		}
		if s.bound.CompareAndSwap(cur, math.Float64bits(d)) {
			break
		}
	}
	s.incMu.Lock()
	if d < s.bestDelay {
		s.bestDelay = d
		copy(s.best, loc)
		if s.onInc != nil {
			asg := model.NewAssignment(s.tree)
			s.c.StoreAssignment(asg, s.best)
			s.onInc(core.Incumbent{
				Assignment: asg,
				Delay:      d,
				LowerBound: s.globalLB,
				Work:       int(s.explored.Load()),
			})
		}
	}
	s.incMu.Unlock()
}

// halt asks every worker to unwind: the first context error wins, later
// ones (and budget halts, which pass nil) keep it. The broadcast happens
// with mu held so a thief between its stop check and cond.Wait cannot
// miss the wakeup.
func (s *search) halt(err error) {
	if err != nil {
		s.errMu.Lock()
		if s.err == nil {
			s.err = err
		}
		s.errMu.Unlock()
	}
	s.mu.Lock()
	s.stop.Store(true)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// step performs the per-node accounting: the shared explored counter is
// flushed every exploredStride nodes and the context polled every
// ctxStride, while the budget is tested every node against the worker's
// running estimate (shared total at the last flush plus local nodes
// since) — exact for one worker, at most a stride per peer stale
// otherwise. It reports whether the search may continue.
func (w *worker) step() bool {
	w.n++
	w.est++
	if w.n&(exploredStride-1) == 0 {
		w.est = w.s.explored.Add(exploredStride)
		if w.n&(ctxStride-1) == 0 {
			if err := w.s.ctx.Err(); err != nil {
				w.s.halt(err)
				return false
			}
		}
	}
	if w.est > w.s.maxNodes {
		w.s.budgetHit.Store(true)
		w.s.halt(nil)
		return false
	}
	return !w.s.stop.Load()
}

// fork snapshots f into a fresh pooled frame.
func (s *search) fork(f *frame) *frame {
	nf := framePool.Get()
	nf.loc = append(nf.loc[:0], f.loc...)
	nf.stack = append(nf.stack[:0], f.stack...)
	nf.loads = append(nf.loads[:0], f.loads...)
	nf.exm = append(nf.exm[:0], f.exm...)
	nf.hostTime = f.hostTime
	nf.forcedRemaining = f.forcedRemaining
	return nf
}

// pushExtra appends extra e to a frame's prefix-maximum stack.
func pushExtra(exm []float64, e float64) []float64 {
	if n := len(exm); n > 0 && exm[n-1] > e {
		e = exm[n-1]
	}
	return append(exm, e)
}

// shouldSplit decides whether to fork the second branch of the current
// decision: only while the worker's own deque is hungry and the global
// frame population is bounded, so deep searches do not snapshot the state
// at every node.
func (s *search) shouldSplit(id int) bool {
	return int(s.dlen[id].Load()) < lowWater && s.queued.Load() < s.maxLive
}

func (s *search) push(id int, f *frame) {
	s.mu.Lock()
	s.pending++
	s.deques[id] = append(s.deques[id], f)
	s.dlen[id].Add(1)
	s.queued.Add(1)
	s.cond.Signal()
	s.mu.Unlock()
}

// take returns the next frame for worker id — its own newest frame, else
// the oldest frame of the first non-empty victim — or nil when the search
// is over (every frame fully explored, or a stop was requested).
func (s *search) take(id int) *frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stop.Load() {
			return nil
		}
		if d := s.deques[id]; len(d) > 0 {
			f := d[len(d)-1]
			d[len(d)-1] = nil
			s.deques[id] = d[:len(d)-1]
			s.dlen[id].Add(-1)
			s.queued.Add(-1)
			return f
		}
		for i := 1; i < len(s.deques); i++ {
			v := (id + i) % len(s.deques)
			if d := s.deques[v]; len(d) > 0 {
				f := d[0]
				copy(d, d[1:])
				d[len(d)-1] = nil
				s.deques[v] = d[:len(d)-1]
				s.dlen[v].Add(-1)
				s.queued.Add(-1)
				return f
			}
		}
		if s.pending == 0 {
			return nil
		}
		s.cond.Wait()
	}
}

// release retires a fully searched frame. The last release wakes every
// waiting thief so they can observe termination.
func (s *search) release(f *frame) {
	framePool.Put(f)
	s.mu.Lock()
	s.pending--
	if s.pending == 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// run is one worker goroutine: take a frame, search it to exhaustion
// (forking branches for hungry peers along the way), repeat.
func (s *search) run(id int) {
	w := &worker{s: s, id: id}
	for {
		f := s.take(id)
		if f == nil {
			break
		}
		w.dfs(f)
		s.release(f)
	}
	if r := w.n & (exploredStride - 1); r != 0 {
		s.explored.Add(r)
	}
	if w.pr != 0 {
		s.pruned.Add(w.pr)
	}
}

// dfs is the sequential branch-and-bound recursion (see exact.
// BranchAndBoundOpts — same branching, same bound, same ordering) over a
// private frame, with two parallel twists: the bound test reads the
// shared atomic incumbent, and when the worker's deque runs dry the
// second branch of a decision is snapshotted and published instead of
// searched in-line.
func (w *worker) dfs(f *frame) {
	if !w.step() {
		return
	}
	s := w.s
	c := s.c
	load := maxLoad(f.loads)
	lower := load
	if n := len(f.exm); n > 0 && f.exm[n-1] > lower {
		// Some pending subtree is proven to add more delay than any
		// committed satellite carries yet (memoized extras).
		lower = f.exm[n-1]
	}
	if bound := f.hostTime + f.forcedRemaining + lower; bound >= s.incumbent() {
		w.pr++
		return // cannot beat the incumbent
	}
	if len(f.stack) == 0 {
		// Complete assignment; the committed terms are now exact.
		if d := f.hostTime + load; d < s.incumbent() {
			s.improve(f.loc, d)
		}
		return
	}
	p := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	if s.extra != nil {
		f.exm = f.exm[:len(f.exm)-1]
	}
	f.forcedRemaining -= c.Forced[p]
	defer func() { // restore for the caller
		f.stack = append(f.stack, p)
		if s.extra != nil {
			f.exm = pushExtra(f.exm, s.extra[p])
		}
		f.forcedRemaining += c.Forced[p]
	}()

	if !c.Proc[p] {
		// Sensor whose parent is hosted: the raw frame crosses the uplink.
		f.loads[c.Sensor[p]] += c.UpComm[p]
		w.dfs(f)
		f.loads[c.Sensor[p]] -= c.UpComm[p]
		return
	}

	sat := c.Colour[p]
	sinkable := sat != model.NoSatellite && p != c.RootPos
	kids := c.Children(p)
	sinkDelta := 0.0
	if sinkable {
		sinkDelta = math.Max(load, f.loads[sat]+c.SubSat[p]+c.UpComm[p]) - load
	}
	sink := func() {
		delta := c.SubSat[p] + c.UpComm[p]
		f.loads[sat] += delta
		c.FillSpan(f.loc, p, model.OnSatellite(sat))
		w.dfs(f)
		c.FillSpan(f.loc, p, model.Host)
		f.loads[sat] -= delta
	}
	host := func() {
		f.hostTime += c.HostTime[p]
		f.loc[p] = model.Host
		f.stack = append(f.stack, kids...)
		for _, ch := range kids {
			f.forcedRemaining += c.Forced[ch]
		}
		if s.extra != nil {
			for _, ch := range kids {
				f.exm = pushExtra(f.exm, s.extra[ch])
			}
		}
		w.dfs(f)
		for _, ch := range kids {
			f.forcedRemaining -= c.Forced[ch]
		}
		f.stack = f.stack[:len(f.stack)-len(kids)]
		if s.extra != nil {
			f.exm = f.exm[:len(f.exm)-len(kids)]
		}
		f.hostTime -= c.HostTime[p]
	}
	if !sinkable {
		host()
		return
	}
	// Explore the branch with the smaller immediate objective increase
	// first; the other one either runs in-line or becomes a stealable
	// frame. The snapshot captures the state a recursive entry into the
	// second branch would see, so the frame's consumer starts with the
	// same bound test the recursion would have performed.
	sinkFirst := sinkDelta <= c.HostTime[p]
	if s.shouldSplit(w.id) {
		nf := s.fork(f)
		if sinkFirst { // second branch: host
			nf.hostTime += c.HostTime[p]
			nf.loc[p] = model.Host
			nf.stack = append(nf.stack, kids...)
			for _, ch := range kids {
				nf.forcedRemaining += c.Forced[ch]
			}
			if s.extra != nil {
				for _, ch := range kids {
					nf.exm = pushExtra(nf.exm, s.extra[ch])
				}
			}
		} else { // second branch: sink
			delta := c.SubSat[p] + c.UpComm[p]
			nf.loads[sat] += delta
			c.FillSpan(nf.loc, p, model.OnSatellite(sat))
		}
		s.push(w.id, nf)
		if sinkFirst {
			sink()
		} else {
			host()
		}
		return
	}
	if sinkFirst {
		sink()
		host()
	} else {
		host()
		sink()
	}
}

// BranchAndBound runs the work-stealing parallel branch-and-bound. The
// returned delay is exact (equal to the sequential solver's) whenever the
// search completes within budget and deadline; the worker count only
// affects wall time and which of several co-optimal assignments is
// reported. See the package comment for the decomposition and the
// incumbent protocol.
func BranchAndBound(ctx context.Context, t *model.Tree, opts Options) (*exact.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c := model.Compile(t)
	n := c.Len()
	nw := opts.Workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	maxNodes := core.IntOr(opts.MaxNodes, 1<<22)

	// The memoization pre-pass runs sequentially before any worker
	// exists: a proven whole instance returns immediately, and the
	// extras table it builds is read-only to the workers afterwards.
	var seedB *exact.BoundSeed
	if opts.Bounds != nil {
		seedB = exact.PrepareBounds(ctx, t, opts.Bounds, maxNodes)
		if e := seedB.RootEntry; e != nil {
			res := &exact.Result{
				Explored:    seedB.Explored,
				Pruned:      seedB.Pruned,
				BoundHits:   seedB.Hits,
				BoundMisses: seedB.Misses,
			}
			return exact.RootHitResult(t, c, e, res, opts.OnIncumbent), nil
		}
	}

	s := &search{
		ctx:       ctx,
		c:         c,
		tree:      t,
		maxNodes:  int64(maxNodes),
		best:      make([]model.Location, n),
		bestDelay: math.Inf(1),
		globalLB:  c.Forced[c.RootPos],
		onInc:     opts.OnIncumbent,
		deques:    make([][]*frame, nw),
		dlen:      make([]atomic.Int32, nw),
		maxLive:   int64(64 * nw),
	}
	s.cond = sync.NewCond(&s.mu)
	s.bound.Store(math.Float64bits(math.Inf(1)))
	if seedB != nil {
		s.extra = seedB.Extra
		if seedB.RootLB > s.globalLB {
			s.globalLB = seedB.RootLB
		}
		s.explored.Store(int64(seedB.Explored))
		s.pruned.Store(int64(seedB.Pruned))
		if seedB.BudgetHit {
			s.budgetHit.Store(true)
			s.stop.Store(true)
		}
		if seedB.Err != nil {
			s.err = seedB.Err
			s.stop.Store(true)
		}
	}

	// Seed the incumbent with the trivial baselines (and the warm hint)
	// before any worker starts, exactly like the sequential solver: the
	// very first bound tests prune, and BestEffort always has a feasible
	// incumbent to fall back on.
	fr := eval.GetFrame()
	seed := make([]model.Location, n)
	c.TopmostLocations(seed)
	s.improve(seed, eval.FlatDelay(c, seed, fr))
	c.BaseLocations(seed)
	s.improve(seed, eval.FlatDelay(c, seed, fr))
	if opts.Warm != nil && opts.Warm.Validate(t) == nil {
		c.LoadLocations(seed, opts.Warm)
		s.improve(seed, eval.FlatDelay(c, seed, fr))
	}
	eval.PutFrame(fr)

	// The root frame is the whole search.
	root := framePool.Get()
	root.loc = pool.Keep(root.loc, n)
	c.BaseLocations(root.loc)
	root.stack = append(root.stack[:0], c.RootPos)
	root.loads = pool.Slice(root.loads, c.NumSats)
	root.exm = root.exm[:0] // pooled frames may carry a stale stack
	if s.extra != nil {
		root.exm = pushExtra(root.exm, s.extra[c.RootPos])
	}
	root.hostTime = 0
	root.forcedRemaining = c.Forced[c.RootPos]
	s.pending = 1
	s.deques[0] = append(s.deques[0], root)
	s.dlen[0].Add(1)
	s.queued.Add(1)

	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s.run(id)
		}(i)
	}
	wg.Wait()
	// A halted run leaves unexplored frames behind; recycle them.
	for _, d := range s.deques {
		for _, f := range d {
			framePool.Put(f)
		}
	}

	res := &exact.Result{
		Delay:      s.bestDelay,
		Explored:   int(s.explored.Load()),
		Pruned:     int(s.pruned.Load()),
		LowerBound: s.globalLB,
	}
	if seedB != nil {
		res.BoundHits, res.BoundMisses = seedB.Hits, seedB.Misses
	}
	switch {
	case s.err != nil:
		if !opts.BestEffort {
			return nil, s.err
		}
		res.Partial = true
	case s.budgetHit.Load():
		if !opts.BestEffort {
			return nil, exact.ErrBudget
		}
		res.Partial = true
	default:
		// The search completed: the incumbent is the proven optimum, and
		// worth remembering — the next solve of this instance is a lookup.
		res.LowerBound = res.Delay
		if seedB != nil {
			seedB.RecordRoot(opts.Bounds, c, s.best, res.Delay)
		}
	}
	asg := model.NewAssignment(t)
	c.StoreAssignment(asg, s.best)
	res.Assignment = asg
	return res, nil
}
