package parallel

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/exact"
	"repro/internal/model"
	"repro/internal/workload"
)

// near compares delays with the repo-wide branch-and-bound tolerance:
// the incremental bound terms are backtracked with -=, so the reported
// delay of the same assignment can carry ~1e-13 of rounding residue that
// depends on the exploration order (see exact_test.go, which compares
// the sequential solvers the same way).
func near(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

// workerCounts is the satellite-mandated sweep: degenerate sequential,
// small, medium, and whatever this machine has.
func workerCounts() []int {
	out := []int{1, 2, 4}
	if gm := runtime.GOMAXPROCS(0); gm != 1 && gm != 2 && gm != 4 {
		out = append(out, gm)
	}
	return out
}

// TestParallelBnBExact: across ~200 randomized solves (50 instances ×
// every worker count) the parallel delay equals the sequential
// branch-and-bound's, and on small instances the brute-force optimum
// too; only the reported co-optimal assignment may differ.
func TestParallelBnBExact(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		spec := workload.DefaultRandomSpec(4+rng.Intn(18), 1+rng.Intn(4))
		spec.Clustered = trial%2 == 0
		tree := workload.Random(rng, spec)

		seq, err := exact.BranchAndBound(tree, 0)
		if err != nil {
			t.Fatalf("trial %d: sequential: %v", trial, err)
		}
		c := model.Compile(tree)
		bfDelay := math.NaN()
		if c.Len() <= 16 {
			bf, err := exact.BruteForce(tree, 0)
			if err != nil {
				t.Fatalf("trial %d: brute force: %v", trial, err)
			}
			bfDelay = bf.Delay
		}

		for _, workers := range workerCounts() {
			res, err := BranchAndBound(context.Background(), tree, Options{Workers: workers})
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			if !near(res.Delay, seq.Delay) {
				t.Fatalf("trial %d workers %d: parallel %v != sequential %v",
					trial, workers, res.Delay, seq.Delay)
			}
			if !math.IsNaN(bfDelay) && !near(res.Delay, bfDelay) {
				t.Fatalf("trial %d workers %d: parallel %v != brute force %v",
					trial, workers, res.Delay, bfDelay)
			}
			if res.Partial || res.LowerBound != res.Delay {
				t.Fatalf("trial %d workers %d: completed search must prove itself: partial=%v lb=%v delay=%v",
					trial, workers, res.Partial, res.LowerBound, res.Delay)
			}
			bd, err := eval.Evaluate(tree, res.Assignment)
			if err != nil {
				t.Fatalf("trial %d workers %d: infeasible assignment: %v", trial, workers, err)
			}
			if !near(bd.Delay, res.Delay) {
				t.Fatalf("trial %d workers %d: assignment evaluates to %v, reported %v",
					trial, workers, bd.Delay, res.Delay)
			}
		}
	}
}

// TestParallelBnBWarmStart: a warm hint (even the optimum itself) never
// changes the answer, and an infeasible hint is ignored.
func TestParallelBnBWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tree := workload.Random(rng, workload.DefaultRandomSpec(22, 3))
	seq, err := exact.BranchAndBound(tree, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BranchAndBound(context.Background(), tree, Options{Workers: 3, Warm: seq.Assignment})
	if err != nil {
		t.Fatal(err)
	}
	if !near(res.Delay, seq.Delay) {
		t.Fatalf("warm-started parallel %v != sequential %v", res.Delay, seq.Delay)
	}
	if res.Explored > seq.Explored {
		t.Logf("note: warm parallel explored %d > sequential %d (racy pruning)", res.Explored, seq.Explored)
	}
	other := workload.Random(rng, workload.DefaultRandomSpec(9, 2))
	bad, err := exact.BranchAndBound(other, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err = BranchAndBound(context.Background(), tree, Options{Workers: 3, Warm: bad.Assignment})
	if err != nil {
		t.Fatal(err)
	}
	if !near(res.Delay, seq.Delay) {
		t.Fatalf("foreign warm hint changed the answer: %v != %v", res.Delay, seq.Delay)
	}
}

// TestParallelBnBAnytimeStream: the incumbent stream is serialised and
// strictly improving no matter how many workers race, every streamed
// assignment is a feasible clone evaluating to its reported delay, and
// the last incumbent is the returned result.
func TestParallelBnBAnytimeStream(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tree := workload.Random(rng, workload.DefaultRandomSpec(26, 3))
	var incs []core.Incumbent
	res, err := BranchAndBound(context.Background(), tree, Options{
		Workers: 4,
		// Calls are serialised under the solver's incumbent mutex, so the
		// plain append is safe even with 4 workers improving.
		OnIncumbent: func(inc core.Incumbent) { incs = append(incs, inc) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) == 0 {
		t.Fatal("no incumbents streamed")
	}
	prev := math.Inf(1)
	prevWork := -1
	for i, inc := range incs {
		if inc.Delay >= prev {
			t.Fatalf("incumbent %d not strictly improving: %v after %v", i, inc.Delay, prev)
		}
		prev = inc.Delay
		if inc.Work < prevWork {
			t.Fatalf("incumbent %d work counter went backwards: %d after %d", i, inc.Work, prevWork)
		}
		prevWork = inc.Work
		if inc.LowerBound <= 0 || inc.LowerBound > res.Delay+1e-9 {
			t.Fatalf("incumbent %d lower bound %v not a floor on the optimum %v", i, inc.LowerBound, res.Delay)
		}
		bd, err := eval.Evaluate(tree, inc.Assignment)
		if err != nil {
			t.Fatalf("incumbent %d infeasible: %v", i, err)
		}
		if !near(bd.Delay, inc.Delay) {
			t.Fatalf("incumbent %d reports %v but evaluates to %v", i, inc.Delay, bd.Delay)
		}
	}
	if last := incs[len(incs)-1].Delay; last != res.Delay {
		t.Fatalf("last incumbent %v != final result %v", last, res.Delay)
	}
}

// TestParallelBnBBestEffortStarved: a node budget far below the search
// size yields a feasible partial whose delay brackets the true optimum
// from above and whose lower bound brackets it from below; the same
// budget without best-effort fails loudly with ErrBudget.
func TestParallelBnBBestEffortStarved(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tree := workload.Random(rng, workload.DefaultRandomSpec(40, 3))
	// 40-node instances overflow the default 1<<22 node budget; give the
	// reference solve headroom (the root anytime tests do the same).
	seq, err := exact.BranchAndBound(tree, 1<<28)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range workerCounts() {
		res, err := BranchAndBound(context.Background(), tree, Options{
			Workers: workers, MaxNodes: 10, BestEffort: true,
		})
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if !res.Partial {
			t.Fatalf("workers %d: starved solve not partial", workers)
		}
		bd, err := eval.Evaluate(tree, res.Assignment)
		if err != nil {
			t.Fatalf("workers %d: partial assignment infeasible: %v", workers, err)
		}
		if !near(bd.Delay, res.Delay) {
			t.Fatalf("workers %d: partial mispriced: %v vs %v", workers, bd.Delay, res.Delay)
		}
		if res.Delay < seq.Delay-1e-9 {
			t.Fatalf("workers %d: partial %v beats the optimum %v", workers, res.Delay, seq.Delay)
		}
		if res.LowerBound <= 0 || res.LowerBound > seq.Delay+1e-9 {
			t.Fatalf("workers %d: partial bound %v not a floor on the optimum %v",
				workers, res.LowerBound, seq.Delay)
		}
		if _, err := BranchAndBound(context.Background(), tree, Options{
			Workers: workers, MaxNodes: 10,
		}); !errors.Is(err, exact.ErrBudget) {
			t.Fatalf("workers %d: err = %v, want ErrBudget", workers, err)
		}
	}
}

// countGoroutines samples the goroutine count after letting exiting
// goroutines unwind.
func countGoroutines() int {
	runtime.Gosched()
	return runtime.NumGoroutine()
}

// TestParallelBnBCancelStopsWorkers: cancelling a large solve surfaces
// the context error promptly and leaks no worker goroutines — the
// wait-group join inside BranchAndBound is the accounting, and the
// before/after goroutine census verifies it.
func TestParallelBnBCancelStopsWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tree := workload.Random(rng, workload.DefaultRandomSpec(300, 6))
	before := countGoroutines()

	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(5*time.Millisecond, cancel)
	defer timer.Stop()
	start := time.Now()
	_, err := BranchAndBound(ctx, tree, Options{Workers: 8, MaxNodes: 1 << 30})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("cancellation took %v to stop the workers", took)
	}

	// BestEffort turns the same cancellation into a feasible partial.
	ctx2, cancel2 := context.WithCancel(context.Background())
	timer2 := time.AfterFunc(5*time.Millisecond, cancel2)
	defer timer2.Stop()
	res, err := BranchAndBound(ctx2, tree, Options{Workers: 8, MaxNodes: 1 << 30, BestEffort: true})
	if err != nil {
		t.Fatalf("best-effort cancel: %v", err)
	}
	if !res.Partial || res.Assignment == nil {
		t.Fatalf("best-effort cancel: want feasible partial, got partial=%v", res.Partial)
	}
	if _, err := eval.Evaluate(tree, res.Assignment); err != nil {
		t.Fatalf("best-effort partial infeasible: %v", err)
	}

	// All workers joined: the goroutine census settles back to the start.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := countGoroutines(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, countGoroutines())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestParallelBnBPreCancelled: a context cancelled before the call stops
// a deterministic single worker at its first poll stride.
func TestParallelBnBPreCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tree := workload.Random(rng, workload.DefaultRandomSpec(400, 6))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BranchAndBound(ctx, tree, Options{Workers: 1, MaxNodes: 1 << 30}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestParallelIncumbentRace hammers the shared-incumbent protocol: many
// oversubscribed solves, some sharing one compiled plan, all streaming
// incumbents, all asserting the exact sequential delay. Run under -race
// this is the memory-model audit of the bound CAS + incMu pairing.
func TestParallelIncumbentRace(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 4; trial++ {
		tree := workload.Random(rng, workload.DefaultRandomSpec(18+trial*4, 3))
		seq, err := exact.BranchAndBound(tree, 0)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, 4)
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var mu sync.Mutex
				last := math.Inf(1)
				res, err := BranchAndBound(context.Background(), tree, Options{
					Workers: 8,
					OnIncumbent: func(inc core.Incumbent) {
						mu.Lock()
						defer mu.Unlock()
						if inc.Delay >= last {
							err := errors.New("incumbent stream not strictly improving")
							select {
							case errs <- err:
							default:
							}
						}
						last = inc.Delay
					},
				})
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
				if !near(res.Delay, seq.Delay) {
					select {
					case errs <- errors.New("parallel delay diverged from sequential"):
					default:
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
