// Package parallel holds the intra-node parallel solve kernels: a
// work-stealing parallel branch-and-bound over compiled flat-tree plans
// that saturates every core on one node before the cluster ring forwards
// a single request, in the spirit of the paper's host–satellites
// decomposition where independent subtrees are the natural unit of
// concurrent work.
//
// The search decomposes exactly like the sequential solver in
// internal/exact: post-order subtree spans are the branching unit (host
// vs. sink-whole-subtree per monochromatic CRU), and a partial search
// state — location vector, decision stack, satellite load table — is a
// self-contained, stealable *frame*. Each worker runs the sequential
// depth-first search over its current frame, forking the less-promising
// branch of a decision onto its own deque whenever the deque runs dry;
// idle workers steal the oldest (largest-subtree) frame from a victim.
// A single worker therefore replays the sequential search order exactly,
// and N workers explore disjoint subtrees of the same decision tree.
//
// Exactness under concurrency comes from the incumbent protocol: the
// best known delay lives in one atomic word (IEEE-754 bits, tightened by
// compare-and-swap), so the instant any worker improves it every other
// worker's bound test — re-evaluated at every search node and at every
// frame pop — prunes against the new value. Pruning only ever removes
// provably non-improving branches, so the completed search returns the
// same optimal delay as the sequential solver, which is what
// TestParallelBnBExact pins across ~200 random instances and the
// -race stress tier hammers for memory-model races.
package parallel
