package model

import (
	"math/rand"
	"testing"
)

// buildCompiledFixture assembles a small mixed tree by hand:
//
//	root ── a ── s1(@X) s2(@X)
//	    └── b ── c ── s3(@Y)
//	         └── s4(@Y)
func buildCompiledFixture(t *testing.T) *Tree {
	t.Helper()
	b := NewBuilder()
	x := b.Satellite("X")
	y := b.Satellite("Y")
	root := b.Root("root", 3, 9)
	a := b.Child(root, "a", 2, 5, 1.5)
	bb := b.Child(root, "b", 2.5, 6, 1)
	c := b.Child(bb, "c", 1, 2, 0.5)
	b.Sensor(a, "s1", x, 4)
	b.Sensor(a, "s2", x, 4.5)
	b.Sensor(c, "s3", y, 3)
	b.Sensor(bb, "s4", y, 2)
	tree, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tree
}

// checkCompiledInvariants cross-checks every derived array of the plan
// against the tree's pointer caches and a from-scratch recomputation.
func checkCompiledInvariants(t *testing.T, tree *Tree, c *Compiled) {
	t.Helper()
	n := tree.Len()
	if c.Len() != n {
		t.Fatalf("plan has %d nodes, tree has %d", c.Len(), n)
	}
	seen := make([]bool, n)
	for p, id := range c.Post {
		if id != tree.Postorder()[p] {
			t.Fatalf("Post[%d] = %d, postorder says %d", p, id, tree.Postorder()[p])
		}
		if c.Pos[id] != int32(p) {
			t.Fatalf("Pos[%d] = %d, want %d", id, c.Pos[id], p)
		}
		seen[id] = true
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("node %d missing from Post", id)
		}
	}
	for i, id := range tree.Preorder() {
		if c.Pre[i] != c.Pos[id] {
			t.Fatalf("Pre[%d] = %d, want position of node %d", i, c.Pre[i], id)
		}
	}
	for p := int32(0); p < int32(n); p++ {
		id := c.Post[p]
		nd := tree.Node(id)
		if got := c.Proc[p]; got != (nd.Kind == Processing) {
			t.Fatalf("Proc[%d] = %v for kind %v", p, got, nd.Kind)
		}
		if c.HostTime[p] != nd.HostTime || c.SatTime[p] != nd.SatTime || c.UpComm[p] != nd.UpComm {
			t.Fatalf("profiles of position %d diverge from node %q", p, nd.Name)
		}
		if nd.Parent == None {
			if c.Parent[p] != -1 {
				t.Fatalf("root position %d has parent %d", p, c.Parent[p])
			}
		} else if c.Post[c.Parent[p]] != nd.Parent {
			t.Fatalf("Parent[%d] maps to node %d, want %d", p, c.Post[c.Parent[p]], nd.Parent)
		}
		kids := c.Children(p)
		if len(kids) != len(nd.Children) {
			t.Fatalf("position %d has %d children, node has %d", p, len(kids), len(nd.Children))
		}
		for k, ch := range kids {
			if c.Post[ch] != nd.Children[k] {
				t.Fatalf("child %d of position %d is node %d, want %d", k, p, c.Post[ch], nd.Children[k])
			}
		}
		// Subtree span: exactly the positions of IsAncestorOrSelf nodes.
		for q := int32(0); q < int32(n); q++ {
			inSpan := q >= c.Start[p] && q <= p
			if inSpan != tree.IsAncestorOrSelf(id, c.Post[q]) {
				t.Fatalf("span of %q misclassifies node %q", nd.Name, tree.Node(c.Post[q]).Name)
			}
		}
		if c.SubSat[p] != tree.SubtreeSatTime(id) {
			t.Fatalf("SubSat[%d] = %v, tree cache says %v", p, c.SubSat[p], tree.SubtreeSatTime(id))
		}
		// Colour and must-host against the subtree satellite sets.
		sats := tree.SubtreeSatellites(id)
		wantColour := NoSatellite
		if len(sats) == 1 {
			wantColour = sats[0]
		}
		if c.Colour[p] != wantColour {
			t.Fatalf("Colour[%d] = %v, want %v", p, c.Colour[p], wantColour)
		}
		wantMust := nd.Kind == Processing && (len(sats) != 1 || id == tree.Root())
		if c.MustHost[p] != wantMust {
			t.Fatalf("MustHost[%d] = %v, want %v", p, c.MustHost[p], wantMust)
		}
		lo, hi := tree.LeafRange(id)
		if int(c.LeafLo[p]) != lo || int(c.LeafHi[p]) != hi {
			t.Fatalf("leaf range of %q = [%d,%d], want [%d,%d]", nd.Name, c.LeafLo[p], c.LeafHi[p], lo, hi)
		}
	}
	// Aggregates recomputed from scratch.
	for p := int32(0); p < int32(n); p++ {
		var sh, sc, forced float64
		for q := c.Start[p]; q <= p; q++ {
			sh += c.HostTime[q]
			sc += c.UpComm[q]
			if c.MustHost[q] {
				forced += c.HostTime[q]
			}
		}
		if !almostEq(c.SubHost[p], sh) || !almostEq(c.SubComm[p], sc) || !almostEq(c.Forced[p], forced) {
			t.Fatalf("aggregates of position %d diverge: SubHost %v/%v SubComm %v/%v Forced %v/%v",
				p, c.SubHost[p], sh, c.SubComm[p], sc, c.Forced[p], forced)
		}
	}
	// σ labels: reference recomputation over node structs.
	wIn := make([]float64, n)
	sigma := make([]float64, n)
	for _, id := range tree.Preorder() {
		nd := tree.Node(id)
		if nd.Kind != Processing {
			continue
		}
		for k, ch := range nd.Children {
			label := 0.0
			if k == 0 {
				label = wIn[id] + nd.HostTime
			}
			sigma[ch] = label
			wIn[ch] = label
		}
	}
	for id := 0; id < n; id++ {
		if c.Sigma[c.Pos[id]] != sigma[id] {
			t.Fatalf("Sigma of node %d = %v, want %v", id, c.Sigma[c.Pos[id]], sigma[id])
		}
	}
	// Bands partition the planar leaf order per satellite.
	leafCount := 0
	for sat := range c.SatBands {
		for _, b := range c.SatBands[sat] {
			if b.Lo > b.Hi {
				t.Fatalf("satellite %d has inverted band %+v", sat, b)
			}
			for i := b.Lo; i <= b.Hi; i++ {
				leafCount++
				if c.Sensor[c.Leaves[i]] != SatelliteID(sat) {
					t.Fatalf("band %+v of satellite %d covers a leaf of satellite %d",
						b, sat, c.Sensor[c.Leaves[i]])
				}
			}
		}
	}
	if leafCount != tree.SensorCount() {
		t.Fatalf("bands cover %d leaves, tree has %d sensors", leafCount, tree.SensorCount())
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+maxAbs(a, b))
}

func maxAbs(a, b float64) float64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}

func TestCompileInvariantsFixture(t *testing.T) {
	tree := buildCompiledFixture(t)
	c := Compile(tree)
	if c2 := Compile(tree); c2 != c {
		t.Fatalf("Compile is not memoised on the tree")
	}
	checkCompiledInvariants(t, tree, c)
}

func TestCompileInvariantsRandom(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		tree := randomTreeForCompile(rand.New(rand.NewSource(seed)))
		checkCompiledInvariants(t, tree, Compile(tree))
	}
}

// randomTreeForCompile grows a random valid tree without importing the
// workload package (which would cycle).
func randomTreeForCompile(rng *rand.Rand) *Tree {
	b := NewBuilder()
	sats := make([]SatelliteID, 2+rng.Intn(3))
	for i := range sats {
		sats[i] = b.Satellite(string(rune('A' + i)))
	}
	root := b.Root("n0", 1+rng.Float64()*3, 2+rng.Float64()*6)
	open := []NodeID{root}
	nodes := 1 + rng.Intn(20)
	ids := []NodeID{root}
	for i := 1; i <= nodes; i++ {
		parent := open[rng.Intn(len(open))]
		id := b.Child(parent, "n"+itoa(i), 1+rng.Float64()*3, 2+rng.Float64()*6, rng.Float64())
		open = append(open, id)
		ids = append(ids, id)
	}
	// Sensors under every CRU: leaf CRUs become valid (every leaf must be
	// a sensor) and inner CRUs simply gain extra leaves, exercising mixed
	// sensor/CRU sibling lists in the plan.
	sensorN := 0
	for _, id := range ids {
		k := 1 + rng.Intn(2)
		for j := 0; j < k; j++ {
			b.Sensor(id, "s"+itoa(sensorN), sats[rng.Intn(len(sats))], rng.Float64()*4)
			sensorN++
		}
	}
	return b.MustBuild()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

// TestAdoptCompiledPlanPatchesProfiles checks the incremental fast path:
// a profile edit hands the new revision a plan that (a) shares every
// structural array with the base plan and (b) is element-for-element
// identical to a from-scratch compilation of the same revision.
func TestAdoptCompiledPlanPatchesProfiles(t *testing.T) {
	tree := buildCompiledFixture(t)
	base := Compile(tree)

	e := tree.Edit()
	id, _ := e.NodeByName("b")
	e.SetTimes(id, 4.25, 7.5)
	cid, _ := e.NodeByName("c")
	e.SetUpComm(cid, 0.75)
	next, err := e.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	patched := next.cpl.Load()
	if patched == nil {
		t.Fatalf("profile edit did not transfer a compiled plan")
	}
	if &patched.Post[0] != &base.Post[0] || &patched.Child[0] != &base.Child[0] || &patched.Start[0] != &base.Start[0] {
		t.Fatalf("patched plan does not share the base's structural arrays")
	}
	if &patched.HostTime[0] == &base.HostTime[0] {
		t.Fatalf("patched plan aliases the base's float arrays")
	}

	// A fresh compile of an identical tree must agree bit for bit.
	fresh := compile(next)
	for p := 0; p < fresh.Len(); p++ {
		if patched.HostTime[p] != fresh.HostTime[p] || patched.SatTime[p] != fresh.SatTime[p] ||
			patched.UpComm[p] != fresh.UpComm[p] || patched.SubSat[p] != fresh.SubSat[p] ||
			patched.SubHost[p] != fresh.SubHost[p] || patched.SubComm[p] != fresh.SubComm[p] ||
			patched.Forced[p] != fresh.Forced[p] || patched.Sigma[p] != fresh.Sigma[p] {
			t.Fatalf("patched plan diverges from fresh compile at position %d", p)
		}
	}
	// The base tree's plan is untouched.
	checkCompiledInvariants(t, tree, base)
	checkCompiledInvariants(t, next, patched)
}

// FuzzCompile feeds arbitrary node tables to Validate and compiles every
// tree that passes, asserting the plan invariants hold: Compile must
// never panic or mis-derive on any tree Validate admits, and malformed
// trees must be rejected before compilation is ever attempted.
func FuzzCompile(f *testing.F) {
	f.Add([]byte{2, 1, 0, 0, 1, 1, 0, 10, 20, 5})
	f.Add([]byte{4, 2, 0, 0, 1, 0, 1, 0, 1, 1, 1, 3, 7, 9, 11, 2, 2})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		tree, ok := treeFromFuzz(data)
		if !ok {
			return
		}
		if err := tree.Validate(); err != nil {
			return // malformed: rejected before any compilation
		}
		tree.refreshCaches()
		checkCompiledInvariants(t, tree, Compile(tree))
	})
}

// treeFromFuzz decodes a node table from raw bytes: byte 0 is the node
// count, byte 1 the satellite count, then per node a parent byte and a
// kind/satellite byte, then profile bytes. The decoder builds the raw
// Tree struct directly (no Builder) so structurally broken inputs reach
// Validate.
func treeFromFuzz(data []byte) (*Tree, bool) {
	if len(data) < 2 {
		return nil, false
	}
	n := int(data[0]) % 24
	k := 1 + int(data[1])%4
	need := 2 + 2*n
	if n == 0 || len(data) < need {
		return nil, false
	}
	t := &Tree{nodes: make([]Node, n)}
	for i := 0; i < k; i++ {
		t.satellites = append(t.satellites, Satellite{ID: SatelliteID(i), Name: string(rune('A' + i))})
	}
	prof := data[need:]
	pf := func(j int) float64 {
		if len(prof) == 0 {
			return 1
		}
		return float64(prof[j%len(prof)]) / 8
	}
	rootSeen := false
	for i := 0; i < n; i++ {
		parent := int(data[2+2*i])
		kindSat := data[3+2*i]
		nd := &t.nodes[i]
		nd.ID = NodeID(i)
		nd.Name = "f" + itoa(i)
		nd.Satellite = NoSatellite
		if parent >= n || parent == i {
			nd.Parent = None
			if !rootSeen {
				t.root = NodeID(i)
				rootSeen = true
			}
		} else {
			nd.Parent = NodeID(parent)
			t.nodes[parent].Children = append(t.nodes[parent].Children, NodeID(i))
		}
		if kindSat&1 == 1 {
			nd.Kind = SensorKind
			nd.Satellite = SatelliteID(int(kindSat>>1) % (k + 1)) // may be out of range: Validate's job
			if nd.Satellite == SatelliteID(k) {
				nd.Satellite = NoSatellite
			}
			nd.UpComm = pf(3 * i)
		} else {
			nd.Kind = Processing
			nd.HostTime = pf(3 * i)
			nd.SatTime = pf(3*i + 1)
			nd.UpComm = pf(3*i + 2)
		}
	}
	if !rootSeen {
		return nil, false
	}
	// Children were appended in child-index order, which may differ from
	// any planar embedding — that is fine, Validate only checks link
	// consistency, and compile must handle any admitted shape.
	return t, true
}
