package model

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// smallTree builds:
//
//	root
//	├── a ── sensorA (sat0)
//	└── b
//	    ├── sensorB1 (sat0)
//	    └── sensorB2 (sat1)
func smallTree(t *testing.T) *Tree {
	t.Helper()
	b := NewBuilder()
	s0 := b.Satellite("S0")
	s1 := b.Satellite("S1")
	root := b.Root("root", 5, 0)
	a := b.Child(root, "a", 2, 3, 1)
	bb := b.Child(root, "b", 4, 6, 2)
	b.Sensor(a, "sensorA", s0, 0.5)
	b.Sensor(bb, "sensorB1", s0, 0.25)
	b.Sensor(bb, "sensorB2", s1, 0.75)
	tree, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tree
}

func TestBuilderBasics(t *testing.T) {
	tree := smallTree(t)
	if got := tree.Len(); got != 6 {
		t.Fatalf("Len = %d, want 6", got)
	}
	if got := tree.ProcessingCount(); got != 3 {
		t.Errorf("ProcessingCount = %d, want 3", got)
	}
	if got := tree.SensorCount(); got != 3 {
		t.Errorf("SensorCount = %d, want 3", got)
	}
	if got := len(tree.Satellites()); got != 2 {
		t.Errorf("satellites = %d, want 2", got)
	}
	root := tree.Node(tree.Root())
	if root.Name != "root" || root.Parent != None {
		t.Errorf("bad root: %+v", root)
	}
}

func TestTraversalOrders(t *testing.T) {
	tree := smallTree(t)
	names := func(ids []NodeID) string {
		parts := make([]string, len(ids))
		for i, id := range ids {
			parts[i] = tree.Node(id).Name
		}
		return strings.Join(parts, " ")
	}
	if got := names(tree.Preorder()); got != "root a sensorA b sensorB1 sensorB2" {
		t.Errorf("preorder = %q", got)
	}
	if got := names(tree.Postorder()); got != "sensorA a sensorB1 sensorB2 b root" {
		t.Errorf("postorder = %q", got)
	}
	if got := names(tree.Leaves()); got != "sensorA sensorB1 sensorB2" {
		t.Errorf("leaves = %q", got)
	}
}

func TestLeafRanges(t *testing.T) {
	tree := smallTree(t)
	cases := map[string][2]int{
		"root":     {0, 2},
		"a":        {0, 0},
		"b":        {1, 2},
		"sensorA":  {0, 0},
		"sensorB1": {1, 1},
		"sensorB2": {2, 2},
	}
	for name, want := range cases {
		id, ok := tree.NodeByName(name)
		if !ok {
			t.Fatalf("node %q missing", name)
		}
		lo, hi := tree.LeafRange(id)
		if lo != want[0] || hi != want[1] {
			t.Errorf("LeafRange(%s) = [%d,%d], want %v", name, lo, hi, want)
		}
	}
}

func TestSubtreeSatellites(t *testing.T) {
	tree := smallTree(t)
	a, _ := tree.NodeByName("a")
	if sat, ok := tree.CorrespondentSatellite(a); !ok || sat != 0 {
		t.Errorf("a correspondent = %v/%v, want 0/true", sat, ok)
	}
	b, _ := tree.NodeByName("b")
	if _, ok := tree.CorrespondentSatellite(b); ok {
		t.Errorf("b should have no correspondent satellite (spans 2)")
	}
	if got := tree.SubtreeSatellites(b); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("SubtreeSatellites(b) = %v", got)
	}
	if got := tree.SubtreeSatellites(tree.Root()); len(got) != 2 {
		t.Errorf("SubtreeSatellites(root) = %v", got)
	}
}

func TestSubtreeSatTime(t *testing.T) {
	tree := smallTree(t)
	b, _ := tree.NodeByName("b")
	if got := tree.SubtreeSatTime(b); got != 6 {
		t.Errorf("SubtreeSatTime(b) = %v, want 6", got)
	}
	if got := tree.SubtreeSatTime(tree.Root()); got != 9 {
		t.Errorf("SubtreeSatTime(root) = %v, want 9", got)
	}
}

func TestIsAncestorOrSelf(t *testing.T) {
	tree := smallTree(t)
	root := tree.Root()
	a, _ := tree.NodeByName("a")
	b, _ := tree.NodeByName("b")
	sb2, _ := tree.NodeByName("sensorB2")
	for _, tc := range []struct {
		a, b NodeID
		want bool
	}{
		{root, a, true}, {root, sb2, true}, {b, sb2, true},
		{a, sb2, false}, {sb2, b, false}, {a, a, true}, {a, b, false},
	} {
		if got := tree.IsAncestorOrSelf(tc.a, tc.b); got != tc.want {
			t.Errorf("IsAncestorOrSelf(%d,%d) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestDepth(t *testing.T) {
	tree := smallTree(t)
	sb2, _ := tree.NodeByName("sensorB2")
	if got := tree.Depth(tree.Root()); got != 0 {
		t.Errorf("Depth(root) = %d", got)
	}
	if got := tree.Depth(sb2); got != 2 {
		t.Errorf("Depth(sensorB2) = %d, want 2", got)
	}
}

func TestTotalHostTime(t *testing.T) {
	tree := smallTree(t)
	if got := tree.TotalHostTime(); got != 11 {
		t.Errorf("TotalHostTime = %v, want 11", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	tree := smallTree(t)
	cp := tree.Clone()
	cp.Node(cp.Root()).HostTime = 99
	if tree.Node(tree.Root()).HostTime == 99 {
		t.Fatal("Clone shares node storage with original")
	}
	if cp.Len() != tree.Len() || cp.SensorCount() != tree.SensorCount() {
		t.Fatal("Clone lost nodes")
	}
}

func TestScaleProfiles(t *testing.T) {
	tree := smallTree(t)
	scaled := tree.ScaleProfiles(2, 3, 0.5)
	a, _ := scaled.NodeByName("a")
	n := scaled.Node(a)
	if n.HostTime != 4 || n.SatTime != 9 || n.UpComm != 0.5 {
		t.Errorf("scaled a = h%v s%v c%v", n.HostTime, n.SatTime, n.UpComm)
	}
	// Caches must be refreshed.
	b, _ := scaled.NodeByName("b")
	if got := scaled.SubtreeSatTime(b); got != 18 {
		t.Errorf("scaled SubtreeSatTime(b) = %v, want 18", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("double root", func(t *testing.T) {
		b := NewBuilder()
		b.Root("r1", 1, 1)
		b.Root("r2", 1, 1)
		if _, err := b.Build(); err == nil {
			t.Fatal("expected error for double root")
		}
	})
	t.Run("no root", func(t *testing.T) {
		b := NewBuilder()
		if _, err := b.Build(); err != ErrNoRoot {
			t.Fatalf("got %v, want ErrNoRoot", err)
		}
	})
	t.Run("child of sensor", func(t *testing.T) {
		b := NewBuilder()
		s := b.Satellite("s")
		r := b.Root("r", 1, 1)
		sn := b.Sensor(r, "sn", s, 0)
		b.Child(sn, "bad", 1, 1, 1)
		if _, err := b.Build(); err == nil {
			t.Fatal("expected error for child of sensor")
		}
	})
	t.Run("leaf not sensor", func(t *testing.T) {
		b := NewBuilder()
		b.Satellite("s")
		r := b.Root("r", 1, 1)
		b.Child(r, "leafcru", 1, 1, 1)
		if _, err := b.Build(); err == nil {
			t.Fatal("expected ErrLeafNotSensor")
		}
	})
	t.Run("negative time", func(t *testing.T) {
		b := NewBuilder()
		s := b.Satellite("s")
		r := b.Root("r", -1, 0)
		b.Sensor(r, "sn", s, 0)
		if _, err := b.Build(); err == nil {
			t.Fatal("expected ErrNegativeTime")
		}
	})
	t.Run("NaN time", func(t *testing.T) {
		b := NewBuilder()
		s := b.Satellite("s")
		r := b.Root("r", math.NaN(), 0)
		b.Sensor(r, "sn", s, 0)
		if _, err := b.Build(); err == nil {
			t.Fatal("expected error for NaN time")
		}
	})
	t.Run("unknown satellite", func(t *testing.T) {
		b := NewBuilder()
		r := b.Root("r", 1, 0)
		b.Sensor(r, "sn", SatelliteID(7), 0)
		if _, err := b.Build(); err == nil {
			t.Fatal("expected ErrUnknownSat")
		}
	})
	t.Run("child of failed parent", func(t *testing.T) {
		b := NewBuilder()
		b.Satellite("s")
		bad := b.Child(None, "orphan", 1, 1, 1)
		if bad != None {
			t.Fatal("expected None for orphan child")
		}
		if _, err := b.Build(); err == nil {
			t.Fatal("expected error")
		}
	})
}

func TestValidateCorruption(t *testing.T) {
	tree := smallTree(t)
	// Corrupt: point node b's parent at a non-parent.
	b, _ := tree.NodeByName("b")
	tree.Node(b).Parent = b
	if err := tree.Validate(); err == nil {
		t.Fatal("expected validation failure after corruption")
	}
}

func TestAssignmentValidate(t *testing.T) {
	tree := smallTree(t)
	a := NewAssignment(tree)
	if err := a.Validate(tree); err != nil {
		t.Fatalf("all-host assignment invalid: %v", err)
	}
	nodeA, _ := tree.NodeByName("a")
	nodeB, _ := tree.NodeByName("b")

	// Valid: a -> its correspondent satellite 0.
	a2 := a.Clone()
	a2.Set(nodeA, OnSatellite(0))
	if err := a2.Validate(tree); err != nil {
		t.Errorf("a on sat0 should be valid: %v", err)
	}

	// Invalid: a on the wrong satellite.
	a3 := a.Clone()
	a3.Set(nodeA, OnSatellite(1))
	if err := a3.Validate(tree); err == nil {
		t.Error("a on sat1 should be invalid (correspondent is sat0)")
	}

	// Invalid: b spans two satellites.
	a4 := a.Clone()
	a4.Set(nodeB, OnSatellite(0))
	if err := a4.Validate(tree); err == nil {
		t.Error("b off-host should be invalid (conflict)")
	}

	// Invalid: root off host.
	a5 := a.Clone()
	a5.Set(tree.Root(), OnSatellite(0))
	if err := a5.Validate(tree); err == nil {
		t.Error("root off host should be invalid")
	}

	// Invalid: sensor moved.
	a6 := a.Clone()
	sb2, _ := tree.NodeByName("sensorB2")
	a6.Set(sb2, Host)
	if err := a6.Validate(tree); err == nil {
		t.Error("sensor on host should be invalid")
	}
}

func TestAssignmentCutEdges(t *testing.T) {
	tree := smallTree(t)
	a := NewAssignment(tree) // all CRUs on host -> cut = all sensor edges
	cut := a.CutEdges(tree)
	if len(cut) != 3 {
		t.Fatalf("cut = %v, want 3 sensor edges", cut)
	}
	nodeA, _ := tree.NodeByName("a")
	a.Set(nodeA, OnSatellite(0))
	cut = a.CutEdges(tree)
	// Now the cut is root->a plus b's two sensor edges.
	if len(cut) != 3 {
		t.Fatalf("cut = %v, want 3 edges", cut)
	}
	if cut[0][1] != nodeA {
		t.Errorf("first cut edge should end at a, got %v", cut[0])
	}
}

func TestAssignmentHostSetAndKey(t *testing.T) {
	tree := smallTree(t)
	a := NewAssignment(tree)
	if got := len(a.HostSet(tree)); got != 3 {
		t.Errorf("HostSet = %d entries, want 3", got)
	}
	k1 := a.Key()
	nodeA, _ := tree.NodeByName("a")
	a.Set(nodeA, OnSatellite(0))
	if a.Key() == k1 {
		t.Error("Key must change when assignment changes")
	}
	if !strings.Contains(a.Describe(tree), "host") {
		t.Error("Describe should mention host")
	}
}

func TestLocation(t *testing.T) {
	if !Host.IsHost() {
		t.Fatal("Host.IsHost() = false")
	}
	var zero Location
	if !zero.IsHost() {
		t.Fatal("zero Location must be the host")
	}
	l := OnSatellite(3)
	if l.IsHost() {
		t.Fatal("OnSatellite(3).IsHost() = true")
	}
	if s, ok := l.Satellite(); !ok || s != 3 {
		t.Fatalf("Satellite() = %v,%v", s, ok)
	}
	if l.String() != "sat(3)" || Host.String() != "host" {
		t.Errorf("String: %q %q", l.String(), Host.String())
	}
}

func TestSpecRoundTrip(t *testing.T) {
	tree := smallTree(t)
	var buf bytes.Buffer
	if err := WriteSpec(&buf, tree, "small"); err != nil {
		t.Fatalf("WriteSpec: %v", err)
	}
	back, err := ReadSpec(&buf)
	if err != nil {
		t.Fatalf("ReadSpec: %v", err)
	}
	if back.Len() != tree.Len() || back.SensorCount() != tree.SensorCount() {
		t.Fatalf("round trip changed shape: %v vs %v", back, tree)
	}
	for _, id := range tree.Preorder() {
		want := tree.Node(id)
		gotID, ok := back.NodeByName(want.Name)
		if !ok {
			t.Fatalf("node %q lost in round trip", want.Name)
		}
		got := back.Node(gotID)
		if got.HostTime != want.HostTime || got.SatTime != want.SatTime || got.UpComm != want.UpComm {
			t.Errorf("node %q profile changed: %+v vs %+v", want.Name, got, want)
		}
	}
}

func TestSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"forward parent", Spec{
			Satellites: []string{"s"},
			CRUs:       []SpecCRU{{Name: "child", Parent: "root"}, {Name: "root", HostTime: 1}},
		}},
		{"unknown satellite", Spec{
			Satellites: []string{"s"},
			CRUs:       []SpecCRU{{Name: "root", HostTime: 1}},
			Sensors:    []SpecSensor{{Name: "x", Parent: "root", Satellite: "nope"}},
		}},
		{"duplicate name", Spec{
			Satellites: []string{"s"},
			CRUs:       []SpecCRU{{Name: "root", HostTime: 1}, {Name: "root", Parent: "root"}},
		}},
		{"duplicate satellite", Spec{
			Satellites: []string{"s", "s"},
			CRUs:       []SpecCRU{{Name: "root", HostTime: 1}},
		}},
		{"unnamed cru", Spec{
			Satellites: []string{"s"},
			CRUs:       []SpecCRU{{HostTime: 1}},
		}},
	}
	for _, tc := range cases {
		if _, err := FromSpec(&tc.spec); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestReadSpecRejectsGarbage(t *testing.T) {
	if _, err := ReadSpec(strings.NewReader("{ not json")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := ReadSpec(strings.NewReader(`{"bogus_field": 1}`)); err == nil {
		t.Fatal("expected unknown-field error")
	}
}

func TestDOTAndRender(t *testing.T) {
	tree := smallTree(t)
	dot := DOT(tree, "small")
	for _, want := range []string{"digraph", "sensorB2", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	r := tree.Render()
	if !strings.Contains(r, "root") || !strings.Contains(r, "@S1") {
		t.Errorf("Render output unexpected:\n%s", r)
	}
	if tree.String() == "" || Processing.String() != "cru" || SensorKind.String() != "sensor" {
		t.Error("String() helpers broken")
	}
}
