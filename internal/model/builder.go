package model

import (
	"fmt"
)

// Builder assembles a Tree incrementally. It is the only supported way to
// construct trees programmatically; Build validates all invariants and
// freezes the derived caches.
//
//	b := model.NewBuilder()
//	root := b.Root("fuse", 4, 0)           // h=4 (s irrelevant: root stays on host)
//	ecg := b.Child(root, "ecg", 2, 3, 1)   // h=2 s=3 c(ecg->fuse)=1
//	sat := b.Satellite("box-1")
//	b.Sensor(ecg, "ecg-probe", sat, 0.5)   // raw frame costs 0.5 to uplink
//	tree, err := b.Build()
type Builder struct {
	nodes      []Node
	satellites []Satellite
	rootSet    bool
	err        error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// Satellite registers a satellite and returns its ID. Names should be unique
// for readable reports, but uniqueness is not required by the model.
func (b *Builder) Satellite(name string) SatelliteID {
	id := SatelliteID(len(b.satellites))
	b.satellites = append(b.satellites, Satellite{ID: id, Name: name})
	return id
}

// Root creates the root CRU. Calling Root twice records an error that Build
// reports.
func (b *Builder) Root(name string, hostTime, satTime float64) NodeID {
	if b.rootSet {
		b.fail(fmt.Errorf("model: Root called twice (%q)", name))
		return None
	}
	b.rootSet = true
	return b.addNode(Node{
		Name:      name,
		Kind:      Processing,
		Parent:    None,
		HostTime:  hostTime,
		SatTime:   satTime,
		Satellite: NoSatellite,
	})
}

// Child creates a processing CRU under parent. upComm is c_{child,parent}:
// the cost of shipping one processed frame from the child to the parent when
// the tree is cut between them.
func (b *Builder) Child(parent NodeID, name string, hostTime, satTime, upComm float64) NodeID {
	if !b.checkParent(parent, name) {
		return None
	}
	id := b.addNode(Node{
		Name:      name,
		Kind:      Processing,
		Parent:    parent,
		HostTime:  hostTime,
		SatTime:   satTime,
		UpComm:    upComm,
		Satellite: NoSatellite,
	})
	b.nodes[parent].Children = append(b.nodes[parent].Children, id)
	return id
}

// Sensor creates a sensor leaf under parent, physically attached to sat.
// rawComm is c_{s,parent}: the cost of shipping one raw frame to the parent
// CRU when the parent runs on the host.
func (b *Builder) Sensor(parent NodeID, name string, sat SatelliteID, rawComm float64) NodeID {
	if !b.checkParent(parent, name) {
		return None
	}
	id := b.addNode(Node{
		Name:      name,
		Kind:      SensorKind,
		Parent:    parent,
		UpComm:    rawComm,
		Satellite: sat,
	})
	b.nodes[parent].Children = append(b.nodes[parent].Children, id)
	return id
}

// Build validates and returns the tree. The Builder must not be reused after
// a successful Build (the node slice is handed to the Tree).
func (b *Builder) Build() (*Tree, error) {
	if b.err != nil {
		return nil, b.err
	}
	if !b.rootSet {
		return nil, ErrNoRoot
	}
	t := &Tree{nodes: b.nodes, root: 0, satellites: b.satellites}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	t.refreshCaches()
	return t, nil
}

// MustBuild is Build for workloads that are known-valid by construction
// (e.g. the canonical paper tree); it panics on error.
func (b *Builder) MustBuild() *Tree {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

func (b *Builder) addNode(n Node) NodeID {
	n.ID = NodeID(len(b.nodes))
	b.nodes = append(b.nodes, n)
	return n.ID
}

func (b *Builder) checkParent(parent NodeID, name string) bool {
	if parent == None {
		// Propagated failure from an earlier builder call: keep the first error.
		if b.err == nil {
			b.fail(fmt.Errorf("model: node %q attached to failed parent", name))
		}
		return false
	}
	if parent < 0 || int(parent) >= len(b.nodes) {
		b.fail(fmt.Errorf("model: node %q attached to unknown parent %d", name, parent))
		return false
	}
	if b.nodes[parent].Kind == SensorKind {
		b.fail(fmt.Errorf("model: node %q attached to sensor %q", name, b.nodes[parent].Name))
		return false
	}
	return true
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}
