package model

import (
	"slices"
	"sync/atomic"
)

// LeafSpan is a maximal run of consecutive leaf (sensor) positions in the
// planar order, inclusive on both ends. It mirrors colouring.Band without
// importing it (colouring derives its bands from the compiled plan).
type LeafSpan struct{ Lo, Hi int32 }

// Compiled is an immutable, cache-friendly compilation of one Tree
// revision: structure-of-arrays node fields, a post-order permutation
// with per-node subtree spans, per-satellite sensor groupings, and
// precomputed subtree aggregates with the colouring's monochromatic
// results folded in. Every hot solver loop — flat delay evaluation, DWG
// construction, branch-and-bound bounds, heuristic moves — reads these
// arrays instead of chasing Node pointers and re-deriving traversals.
//
// Unless noted otherwise, per-node arrays are indexed by post-order
// position. Post-order makes every subtree a contiguous span: the subtree
// rooted at position p occupies [Start[p], p+1), so whole-subtree
// operations (sink to a satellite, lift to the host, aggregate sums) are
// plain slice loops. Pre lists the positions in DFS pre-order for passes
// that must match the pointer walks' iteration — and therefore their
// floating-point summation — order exactly; the aggregates are likewise
// accumulated in child order so they are bit-identical to the pointer
// caches, which is what lets the parity tests demand exact equality.
//
// A Compiled is never mutated after construction and is memoised on its
// Tree by Compile. Profile-only edits (Editor.Build's fast path) hand the
// new revision a patched copy that shares every structural array and
// copies only the float arrays, recomputing just the dirtied spine.
type Compiled struct {
	tree *Tree

	// Permutations between NodeIDs and post-order positions.
	Post []NodeID // position -> node ID
	Pos  []int32  // node ID -> position
	Pre  []int32  // positions in DFS pre-order

	// Structure: parents, CSR children, subtree spans.
	Parent   []int32 // parent's position; -1 for the root
	ChildIdx []int32 // CSR offsets into Child, len n+1
	Child    []int32 // children positions, left-to-right
	Start    []int32 // subtree of p spans positions [Start[p], p+1)
	RootPos  int32

	// Node profiles (structure-of-arrays).
	HostTime []float64
	SatTime  []float64
	UpComm   []float64
	Proc     []bool        // Kind == Processing
	Sensor   []SatelliteID // sensor's satellite; NoSatellite for CRUs

	// Subtree aggregates, accumulated in child order.
	SubSat  []float64 // Σ s over the subtree
	SubHost []float64 // Σ h over the subtree
	SubComm []float64 // Σ c over the subtree (own uplink included)
	Forced  []float64 // Σ h over the subtree's must-host CRUs

	// Colouring results folded in.
	Colour   []SatelliteID // monochromatic colour of the subtree; NoSatellite = conflict
	MustHost []bool        // processing CRU pinned to the host (root or multi-colour)

	// Figure-8 σ label of the tree edge above each node (0 for the root).
	Sigma []float64

	// Sensor groupings.
	LeafLo, LeafHi []int32      // leaf-position interval covered by the subtree
	Leaves         []int32      // planar leaf order -> position
	SatSensors     [][]int32    // per satellite: its sensors' positions, planar order
	SatBands       [][]LeafSpan // per satellite: maximal runs of its leaves
	NumSats        int

	aux *planAux
}

// planAux carries lazily derived per-plan artefacts — currently the
// assign package's dual assignment graph. It hangs off the plan behind a
// pointer so plans can be copied (the patched-plan fast path) while the
// aux slot itself is never copied; a patched plan gets a fresh aux,
// because derived artefacts embed the float arrays they were built from.
type planAux struct {
	dual atomic.Value
}

// Dual returns the memoised dual assignment graph (stored as any to keep
// model independent of the assign package), or nil.
func (c *Compiled) Dual() any { return c.aux.dual.Load() }

// StoreDual memoises the dual assignment graph for this plan. Concurrent
// stores race benignly: both values are equivalent, last one wins.
func (c *Compiled) StoreDual(g any) { c.aux.dual.Store(g) }

// Compile returns the compiled plan of t, memoised on the tree: the first
// call per revision builds it, later calls (and every solver dispatched
// through core on the same revision) share it. Profile-edited revisions
// inherit a patched plan from their base, so a mutation stream never
// recompiles structure it did not touch.
func Compile(t *Tree) *Compiled {
	if c := t.cpl.Load(); c != nil {
		return c
	}
	c := compile(t)
	t.cpl.Store(c)
	return c
}

// Tree returns the tree this plan was compiled from.
func (c *Compiled) Tree() *Tree { return c.tree }

// Len returns the number of nodes.
func (c *Compiled) Len() int { return len(c.Post) }

// Children returns the positions of p's children, left-to-right. The
// slice aliases the CSR arena; callers must not modify it.
func (c *Compiled) Children(p int32) []int32 {
	return c.Child[c.ChildIdx[p]:c.ChildIdx[p+1]]
}

// Span returns the position span [start, end) of the subtree rooted at p.
func (c *Compiled) Span(p int32) (start, end int32) { return c.Start[p], p + 1 }

// Bands returns satellite sat's maximal leaf runs in left-to-right order.
func (c *Compiled) Bands(sat SatelliteID) []LeafSpan {
	if sat < 0 || int(sat) >= len(c.SatBands) {
		return nil
	}
	return c.SatBands[sat]
}

// Contiguous reports whether satellite sat's sensors occupy one
// contiguous run of leaves — the precondition of the §5.4 expansion step.
func (c *Compiled) Contiguous(sat SatelliteID) bool { return len(c.Bands(sat)) <= 1 }

// BaseLocations fills loc (position-indexed, resized by the caller to
// Len()) with the everything-on-host assignment: CRUs on the host,
// sensors pinned to their satellites.
func (c *Compiled) BaseLocations(loc []Location) {
	for p := range loc {
		if s := c.Sensor[p]; s != NoSatellite {
			loc[p] = OnSatellite(s)
		} else {
			loc[p] = Host
		}
	}
}

// TopmostLocations fills loc with the maximal distribution: exactly the
// must-host closure stays on the host and every monochromatic region
// hanging off it sinks to its satellite — the same cut as
// colouring.Analysis.FeasibleTopmost.
func (c *Compiled) TopmostLocations(loc []Location) {
	c.BaseLocations(loc)
	for p := int32(0); p < int32(len(loc)); p++ {
		if !c.Proc[p] || c.MustHost[p] {
			continue
		}
		if par := c.Parent[p]; par >= 0 && c.MustHost[par] {
			c.FillSpan(loc, p, OnSatellite(c.Colour[p]))
		}
	}
}

// FillSpan places every processing CRU in the subtree at p onto l —
// the span form of the solvers' placeSubtree walks. Sensors keep their
// pinned location.
func (c *Compiled) FillSpan(loc []Location, p int32, l Location) {
	for q := c.Start[p]; q <= p; q++ {
		if c.Proc[q] {
			loc[q] = l
		}
	}
}

// LoadLocations copies a NodeID-indexed assignment into the
// position-indexed vector loc.
func (c *Compiled) LoadLocations(loc []Location, a *Assignment) {
	for p := range loc {
		loc[p] = a.Loc[c.Post[p]]
	}
}

// StoreAssignment copies the position-indexed vector loc into the
// NodeID-indexed assignment.
func (c *Compiled) StoreAssignment(a *Assignment, loc []Location) {
	for p := range loc {
		a.Loc[c.Post[p]] = loc[p]
	}
}

// compile builds the plan from the tree's pointer caches. The tree must
// be valid (Builder/Editor output); compile is reachable only through
// Compile on such trees.
func compile(t *Tree) *Compiled {
	n := t.Len()
	c := &Compiled{
		tree:     t,
		Post:     make([]NodeID, n),
		Pos:      make([]int32, n),
		Pre:      make([]int32, n),
		Parent:   make([]int32, n),
		ChildIdx: make([]int32, n+1),
		Start:    make([]int32, n),
		HostTime: make([]float64, n),
		SatTime:  make([]float64, n),
		UpComm:   make([]float64, n),
		Proc:     make([]bool, n),
		Sensor:   make([]SatelliteID, n),
		SubSat:   make([]float64, n),
		SubHost:  make([]float64, n),
		SubComm:  make([]float64, n),
		Forced:   make([]float64, n),
		Colour:   make([]SatelliteID, n),
		MustHost: make([]bool, n),
		Sigma:    make([]float64, n),
		LeafLo:   make([]int32, n),
		LeafHi:   make([]int32, n),
		Leaves:   make([]int32, len(t.leaves)),
		NumSats:  len(t.satellites),
		aux:      &planAux{},
	}
	for p, id := range t.postorder {
		c.Post[p] = id
		c.Pos[id] = int32(p)
	}
	for i, id := range t.preorder {
		c.Pre[i] = c.Pos[id]
	}
	c.RootPos = c.Pos[t.root]

	// Structure and profiles (CSR children in sibling order).
	total := 0
	for i := range t.nodes {
		total += len(t.nodes[i].Children)
	}
	c.Child = make([]int32, 0, total)
	for p := 0; p < n; p++ {
		nd := &t.nodes[c.Post[p]]
		c.ChildIdx[p] = int32(len(c.Child))
		for _, ch := range nd.Children {
			c.Child = append(c.Child, c.Pos[ch])
		}
		if nd.Parent == None {
			c.Parent[p] = -1
		} else {
			c.Parent[p] = c.Pos[nd.Parent]
		}
		c.HostTime[p] = nd.HostTime
		c.SatTime[p] = nd.SatTime
		c.UpComm[p] = nd.UpComm
		c.Proc[p] = nd.Kind == Processing
		if nd.Kind == SensorKind {
			c.Sensor[p] = nd.Satellite
		} else {
			c.Sensor[p] = NoSatellite
		}
		c.LeafLo[p] = int32(t.leafLo[c.Post[p]])
		c.LeafHi[p] = int32(t.leafHi[c.Post[p]])
	}
	c.ChildIdx[n] = int32(len(c.Child))

	// Subtree spans, aggregates and colours in one post-order pass
	// (children have smaller positions than their parents).
	for p := int32(0); p < int32(n); p++ {
		kids := c.Children(p)
		if len(kids) == 0 {
			c.Start[p] = p
		} else {
			c.Start[p] = c.Start[kids[0]]
		}
		c.SubSat[p] = c.SatTime[p]
		c.SubHost[p] = c.HostTime[p]
		c.SubComm[p] = c.UpComm[p]
		mono := true
		col := c.Sensor[p] // NoSatellite for CRUs, their own satellite for sensors
		for _, ch := range kids {
			c.SubSat[p] += c.SubSat[ch]
			c.SubHost[p] += c.SubHost[ch]
			c.SubComm[p] += c.SubComm[ch]
			cc := c.Colour[ch]
			if cc == NoSatellite {
				mono = false
				continue
			}
			if col == NoSatellite {
				col = cc
			} else if col != cc {
				mono = false
			}
		}
		if !mono {
			col = NoSatellite
		}
		c.Colour[p] = col
		c.MustHost[p] = c.Proc[p] && (col == NoSatellite || p == c.RootPos)
	}
	// Forced needs MustHost of the whole subtree, hence a second pass.
	for p := int32(0); p < int32(n); p++ {
		if c.MustHost[p] {
			c.Forced[p] = c.HostTime[p]
		}
		for _, ch := range c.Children(p) {
			c.Forced[p] += c.Forced[ch]
		}
	}

	c.refreshSigma()

	// Sensor groupings: planar leaf order, per-satellite lists and bands.
	c.SatSensors = make([][]int32, c.NumSats)
	c.SatBands = make([][]LeafSpan, c.NumSats)
	for i, leaf := range t.leaves {
		p := c.Pos[leaf]
		c.Leaves[i] = p
		sat := c.Sensor[p]
		c.SatSensors[sat] = append(c.SatSensors[sat], p)
		if bands := c.SatBands[sat]; len(bands) > 0 && bands[len(bands)-1].Hi == int32(i)-1 {
			bands[len(bands)-1].Hi = int32(i)
		} else {
			c.SatBands[sat] = append(c.SatBands[sat], LeafSpan{Lo: int32(i), Hi: int32(i)})
		}
	}
	return c
}

// refreshSigma recomputes the Figure-8 σ labels from the host times: in
// pre-order, the edge to a node's leftmost child carries (label of the
// edge into the node) + h(node); other child edges carry 0.
func (c *Compiled) refreshSigma() {
	for i := range c.Sigma {
		c.Sigma[i] = 0
	}
	for _, p := range c.Pre {
		if !c.Proc[p] {
			continue
		}
		for k, ch := range c.Children(p) {
			if k == 0 {
				c.Sigma[ch] = c.Sigma[p] + c.HostTime[p]
			} else {
				c.Sigma[ch] = 0
			}
		}
	}
}

// adoptCompiledPlan hands a profile-edited revision t a patched copy of
// base's plan: every structural array (permutations, CSR children, spans,
// colours, sensor groupings) is shared, the float arrays are copied, and
// only the dirtied spine is recomputed — each changed node's value is
// patched in place and its subtree aggregates are re-derived bottom-up
// along the root path exactly as a full compile would, so the patched
// arrays are bit-identical to a fresh compilation. σ labels depend on
// every ancestor host time along leftmost chains, so a host-time edit
// re-runs the O(n) flat σ pass (still allocation-shared, no tree walk).
// Shape changes never reach this path; structural edits drop the plan and
// recompile lazily.
func (t *Tree) adoptCompiledPlan(base *Tree, dirty []NodeID) {
	bc := base.cpl.Load()
	if bc == nil || bc.Len() != t.Len() {
		return
	}
	c := *bc // shallow copy: shares every structural array
	c.tree = t
	c.aux = &planAux{} // derived artefacts depend on the patched floats
	c.HostTime = append([]float64(nil), bc.HostTime...)
	c.SatTime = append([]float64(nil), bc.SatTime...)
	c.UpComm = append([]float64(nil), bc.UpComm...)
	c.SubSat = append([]float64(nil), bc.SubSat...)
	c.SubHost = append([]float64(nil), bc.SubHost...)
	c.SubComm = append([]float64(nil), bc.SubComm...)
	c.Forced = append([]float64(nil), bc.Forced...)

	hostDirty := false
	spine := make([]int32, 0, 2*len(dirty))
	for _, id := range dirty {
		p := c.Pos[id]
		nd := &t.nodes[id]
		changed := false
		if nd.HostTime != c.HostTime[p] {
			c.HostTime[p] = nd.HostTime
			hostDirty = true
			changed = true
		}
		if nd.SatTime != c.SatTime[p] {
			c.SatTime[p] = nd.SatTime
			changed = true
		}
		if nd.UpComm != c.UpComm[p] {
			c.UpComm[p] = nd.UpComm
			changed = true
		}
		if changed {
			for q := p; q >= 0; q = c.Parent[q] {
				spine = append(spine, q)
			}
		}
	}
	if len(spine) > 0 {
		// Bottom-up (ascending position = children first), deduplicated:
		// re-derive each spine node's aggregates from its children in the
		// same accumulation order as compile, so values stay bit-exact.
		slices.Sort(spine)
		prev := int32(-1)
		for _, p := range spine {
			if p == prev {
				continue
			}
			prev = p
			c.SubSat[p] = c.SatTime[p]
			c.SubHost[p] = c.HostTime[p]
			c.SubComm[p] = c.UpComm[p]
			if c.MustHost[p] {
				c.Forced[p] = c.HostTime[p]
			} else {
				c.Forced[p] = 0
			}
			for _, ch := range c.Children(p) {
				c.SubSat[p] += c.SubSat[ch]
				c.SubHost[p] += c.SubHost[ch]
				c.SubComm[p] += c.SubComm[ch]
				c.Forced[p] += c.Forced[ch]
			}
		}
	}
	if hostDirty {
		c.Sigma = make([]float64, len(bc.Sigma))
		c.refreshSigma()
	}
	t.cpl.Store(&c)
}
