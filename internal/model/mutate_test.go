package model

import (
	"fmt"
	"testing"
)

// chainTree builds a deep chain of n processing CRUs over one sensor —
// the worst case for path invalidation (depth ~ n).
func chainTree(tb testing.TB, n int) *Tree {
	tb.Helper()
	b := NewBuilder()
	sat := b.Satellite("S")
	cur := b.Root("cru-0", 1, 0)
	for i := 1; i < n; i++ {
		cur = b.Child(cur, fmt.Sprintf("cru-%d", i), 1, 2, 0.5)
	}
	b.Sensor(cur, "probe", sat, 0.25)
	t, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return t
}

func TestEditorFastPathProfiles(t *testing.T) {
	base := chainTree(t, 8)
	baseFP := Fingerprint(base)
	baseSub := base.SubtreeSatTime(base.Root())

	e := base.Edit()
	id, _ := e.NodeByName("cru-4")
	e.SetTimes(id, 3, 7) // s: 2 -> 7
	next, err := e.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Structure and caches carry over; the sat-load cache is re-derived.
	if next.Len() != base.Len() || next.Root() != base.Root() {
		t.Fatal("fast path changed the shape")
	}
	if got, want := next.SubtreeSatTime(next.Root()), baseSub+5; got != want {
		t.Fatalf("root subtree sat time %v, want %v", got, want)
	}
	if base.Node(id).SatTime != 2 {
		t.Fatal("edit leaked into the base tree")
	}
	if Fingerprint(base) != baseFP {
		t.Fatal("base fingerprint disturbed")
	}
	// Delta fingerprint equals a cold recompute on an identical tree.
	if got, want := Fingerprint(next), Fingerprint(next.Clone()); got != want {
		t.Fatalf("delta fingerprint %s != cold %s", got, want)
	}
	if Fingerprint(next) == baseFP {
		t.Fatal("fingerprint ignored the profile edit")
	}
}

func TestEditorRejects(t *testing.T) {
	base := chainTree(t, 4)
	sensor, _ := base.NodeByName("probe")
	root := base.Root()

	cases := []func(e *Editor){
		func(e *Editor) { e.SetTimes(sensor, 1, 0) },           // sensors perform no work
		func(e *Editor) { e.SetUpComm(root, 1) },               // root has no uplink
		func(e *Editor) { e.SetTimes(root, -1, 0) },            // negative time
		func(e *Editor) { e.Detach(root) },                     // root must stay
		func(e *Editor) { e.SetSensorSatellite(root, 0) },      // not a sensor
		func(e *Editor) { e.SetSensorSatellite(sensor, 99) },   // unknown satellite
		func(e *Editor) { e.Attach(sensor, &Spec{}) },          // empty fragment under a sensor
		func(e *Editor) { e.SetTimes(NodeID(4096), 1, 1) },     // out of range
		func(e *Editor) { e.Detach(sensor); e.Detach(sensor) }, // already detached
	}
	for i, stage := range cases {
		e := base.Edit()
		stage(e)
		if _, err := e.Build(); err == nil {
			t.Errorf("case %d: Build succeeded, want error", i)
		}
	}
}

func TestEditorErrorSticky(t *testing.T) {
	base := chainTree(t, 4)
	e := base.Edit()
	e.SetUpComm(base.Root(), 1) // fails
	id, _ := e.NodeByName("cru-2")
	e.SetTimes(id, 9, 9) // silently skipped
	if _, err := e.Build(); err == nil {
		t.Fatal("expected sticky error")
	}
}

// BenchmarkFingerprintDelta isolates the tentpole's identity fast path:
// after a single-weight edit on a large tree, the delta recompute touches
// only the root-to-edit path, while the cold variant rehashes every node.
func BenchmarkFingerprintDelta(b *testing.B) {
	const n = 2048
	base := chainTree(b, n)
	Fingerprint(base) // prime the memo

	b.Run("delta", func(b *testing.B) {
		tree := base
		for i := 0; i < b.N; i++ {
			e := tree.Edit()
			id, _ := e.NodeByName("cru-1024")
			e.SetTimes(id, float64(i%7)+1, 2)
			next, err := e.Build()
			if err != nil {
				b.Fatal(err)
			}
			Fingerprint(next)
			tree = next
		}
	})
	b.Run("cold", func(b *testing.B) {
		tree := base
		for i := 0; i < b.N; i++ {
			e := tree.Edit()
			id, _ := e.NodeByName("cru-1024")
			e.SetTimes(id, float64(i%7)+1, 2)
			next, err := e.Build()
			if err != nil {
				b.Fatal(err)
			}
			Fingerprint(next.Clone())
			tree = next
		}
	})
}
