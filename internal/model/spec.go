package model

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Spec is the on-disk JSON representation of a problem instance. It is the
// interchange format of the cmd/* tools:
//
//	{
//	  "name": "epilepsy",
//	  "satellites": ["box-1", "box-2"],
//	  "crus": [
//	    {"name": "fuse", "host_time": 4},
//	    {"name": "ecg", "parent": "fuse", "host_time": 2, "sat_time": 3, "comm": 1}
//	  ],
//	  "sensors": [
//	    {"name": "ecg-probe", "parent": "ecg", "satellite": "box-1", "comm": 0.5}
//	  ]
//	}
//
// CRUs must appear after their parent (the natural order when writing specs
// by hand); FromSpec reports a clear error otherwise.
type Spec struct {
	Name       string       `json:"name,omitempty"`
	Satellites []string     `json:"satellites"`
	CRUs       []SpecCRU    `json:"crus"`
	Sensors    []SpecSensor `json:"sensors"`
}

// SpecCRU is one processing CRU row of a Spec.
type SpecCRU struct {
	Name     string  `json:"name"`
	Parent   string  `json:"parent,omitempty"` // empty for the root
	HostTime float64 `json:"host_time"`
	SatTime  float64 `json:"sat_time,omitempty"`
	Comm     float64 `json:"comm,omitempty"` // c_{this,parent}
}

// SpecSensor is one sensor row of a Spec.
type SpecSensor struct {
	Name      string  `json:"name"`
	Parent    string  `json:"parent"`
	Satellite string  `json:"satellite"`
	Comm      float64 `json:"comm,omitempty"` // c_{s,parent}
}

// FromSpec builds and validates a Tree from a Spec.
func FromSpec(s *Spec) (*Tree, error) {
	b := NewBuilder()
	sats := map[string]SatelliteID{}
	for _, name := range s.Satellites {
		if _, dup := sats[name]; dup {
			return nil, fmt.Errorf("model: duplicate satellite %q", name)
		}
		sats[name] = b.Satellite(name)
	}
	ids := map[string]NodeID{}
	for i, c := range s.CRUs {
		if c.Name == "" {
			return nil, fmt.Errorf("model: cru #%d has no name", i)
		}
		if _, dup := ids[c.Name]; dup {
			return nil, fmt.Errorf("model: duplicate node name %q", c.Name)
		}
		if c.Parent == "" {
			ids[c.Name] = b.Root(c.Name, c.HostTime, c.SatTime)
			continue
		}
		p, ok := ids[c.Parent]
		if !ok {
			return nil, fmt.Errorf("model: cru %q references parent %q before it is defined", c.Name, c.Parent)
		}
		ids[c.Name] = b.Child(p, c.Name, c.HostTime, c.SatTime, c.Comm)
	}
	for i, sn := range s.Sensors {
		if sn.Name == "" {
			return nil, fmt.Errorf("model: sensor #%d has no name", i)
		}
		if _, dup := ids[sn.Name]; dup {
			return nil, fmt.Errorf("model: duplicate node name %q", sn.Name)
		}
		p, ok := ids[sn.Parent]
		if !ok {
			return nil, fmt.Errorf("model: sensor %q references unknown parent %q", sn.Name, sn.Parent)
		}
		sat, ok := sats[sn.Satellite]
		if !ok {
			return nil, fmt.Errorf("model: sensor %q references unknown satellite %q", sn.Name, sn.Satellite)
		}
		ids[sn.Name] = b.Sensor(p, sn.Name, sat, sn.Comm)
	}
	return b.Build()
}

// ToSpec converts a Tree back into its Spec form (round-trips with FromSpec
// up to node ordering, which is preserved as pre-order).
func ToSpec(t *Tree, name string) *Spec {
	s := &Spec{Name: name}
	for _, sat := range t.Satellites() {
		s.Satellites = append(s.Satellites, sat.Name)
	}
	for _, id := range t.Preorder() {
		n := t.Node(id)
		parent := ""
		if n.Parent != None {
			parent = t.Node(n.Parent).Name
		}
		switch n.Kind {
		case SensorKind:
			s.Sensors = append(s.Sensors, SpecSensor{
				Name: n.Name, Parent: parent,
				Satellite: t.SatelliteName(n.Satellite), Comm: n.UpComm,
			})
		default:
			s.CRUs = append(s.CRUs, SpecCRU{
				Name: n.Name, Parent: parent,
				HostTime: n.HostTime, SatTime: n.SatTime, Comm: n.UpComm,
			})
		}
	}
	return s
}

// ReadSpec decodes a Spec from JSON and builds the tree.
func ReadSpec(r io.Reader) (*Tree, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("model: decoding spec: %w", err)
	}
	return FromSpec(&s)
}

// WriteSpec encodes t as indented JSON.
func WriteSpec(w io.Writer, t *Tree, name string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToSpec(t, name))
}

// DOT renders the tree in Graphviz DOT syntax, colouring sensors by
// satellite, for quick visual inspection of generated workloads.
func DOT(t *Tree, title string) string {
	palette := []string{"indianred", "gold", "steelblue", "seagreen", "orchid", "sienna", "turquoise", "slategray"}
	out := fmt.Sprintf("digraph %q {\n  rankdir=TB;\n  node [shape=box, fontname=\"Helvetica\"];\n", title)
	for _, id := range t.Preorder() {
		n := t.Node(id)
		switch n.Kind {
		case SensorKind:
			colour := palette[int(n.Satellite)%len(palette)]
			out += fmt.Sprintf("  n%d [label=\"%s\\n@%s\", shape=ellipse, style=filled, fillcolor=%s];\n",
				id, n.Name, t.SatelliteName(n.Satellite), colour)
		default:
			out += fmt.Sprintf("  n%d [label=\"%s\\nh=%.3g s=%.3g\"];\n", id, n.Name, n.HostTime, n.SatTime)
		}
	}
	// Emit edges parent -> child with the upward comm cost as label.
	edges := t.Edges()
	sort.Slice(edges, func(i, j int) bool { return edges[i][1] < edges[j][1] })
	for _, e := range edges {
		out += fmt.Sprintf("  n%d -> n%d [label=\"%.3g\"];\n", e[0], e[1], t.Node(e[1]).UpComm)
	}
	return out + "}\n"
}
