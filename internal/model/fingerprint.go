package model

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// fingerprintVersion prefixes every fingerprint so the hash scheme can
// evolve without silently colliding with values minted by older builds
// (cached results keyed by an old scheme simply miss). cr2 is the Merkle
// scheme: per-subtree hashes that delta-edits can reuse.
const fingerprintVersion = "cr2"

// fpMemo is the memoised fingerprint state of one Tree: the Merkle hash of
// every subtree, a validity mask, and each sensor's satellite rank (the
// satellite partition renumbered by first appearance in pre-order, so
// satellite identity is structural, not nominal). Editor.Build transfers a
// base tree's memo onto a profile-edited copy with only the root-to-edit
// paths invalidated, which is what makes re-fingerprinting a mutated tree
// O(depth) instead of O(n).
type fpMemo struct {
	node    [][sha256.Size]byte // per node: Merkle hash of its subtree
	valid   []bool              // per node: node[] entry is current
	satRank []int               // per node: sensor's satellite rank, -1 otherwise
	fp      string              // rendered fingerprint; "" until computed
}

// Fingerprint returns a canonical, order-stable content hash of the
// problem instance: two structurally identical trees — same shape in the
// same planar embedding, same execution profiles, same communication
// costs, same sensor-to-satellite partition — share a fingerprint even
// when their node and satellite names differ or they were built in a
// different construction order. It is the cache identity of a tree: the
// serving layer keys solve results by Fingerprint plus the request
// parameters (algorithm, objective weights, seed, budget).
//
// The hash covers everything the solvers read and nothing they ignore:
//   - the tree shape and planar embedding, via per-subtree Merkle hashes
//     that fold each node's ordered children hashes into its own (sibling
//     order is semantic: it defines the faces of the assignment graph);
//   - each node's kind, h_i, s_i and c_{i,parent} as exact float bits;
//   - the satellite partition, with satellites renumbered by first
//     appearance in pre-order so satellite identity is structural, not
//     nominal.
//
// Names and the incidental NodeID/SatelliteID numbering are excluded.
//
// The Merkle structure makes the hash delta-aware: the per-node hashes
// are memoised on the (immutable) tree, and Editor.Build hands a
// profile-edited copy the base tree's memo with only the paths from the
// edited nodes to the root invalidated, so re-fingerprinting after a
// weight update costs O(depth) hashes instead of O(n). refreshCaches
// invalidates the memo alongside every other derived index.
func Fingerprint(t *Tree) string {
	if m := t.fpm.Load(); m != nil && m.fp != "" {
		return m.fp
	}
	m := computeFingerprint(t)
	t.fpm.Store(m)
	return m.fp
}

// SubtreeHashes returns the per-subtree Merkle hashes of t, indexed by
// NodeID — the building blocks of Fingerprint, exposed so the exact
// searches can key memoized subtree bounds by content. Two equal hashes
// (within a tree, across session revisions, or across instances of a
// corpus) certify structurally identical subtrees: same shape and planar
// embedding, same profiles as exact float bits, same structural
// satellite partition. The fingerprint memo is computed on first use and
// the returned slice aliases it; callers must treat it as read-only.
func SubtreeHashes(t *Tree) [][sha256.Size]byte {
	Fingerprint(t)
	return t.fpm.Load().node
}

// adoptFingerprintMemo seeds t's fingerprint memo from base's, invalidating
// the dirty nodes and all their ancestors. The caller guarantees t and base
// share shape, planar embedding and satellite partition (profile-only
// edits), so every still-valid per-subtree hash is correct for t as well.
// A missing or mismatched base memo is ignored: Fingerprint then recomputes
// from scratch.
func (t *Tree) adoptFingerprintMemo(base *Tree, dirty []NodeID) {
	bm := base.fpm.Load()
	if bm == nil || len(bm.node) != t.Len() {
		return
	}
	m := &fpMemo{
		node:    append([][sha256.Size]byte(nil), bm.node...),
		valid:   append([]bool(nil), bm.valid...),
		satRank: append([]int(nil), bm.satRank...),
	}
	for _, id := range dirty {
		for cur := id; cur != None && m.valid[cur]; cur = t.nodes[cur].Parent {
			m.valid[cur] = false
		}
	}
	t.fpm.Store(m)
}

// computeFingerprint fills a fresh memo, reusing every still-valid subtree
// hash of the tree's current memo (left behind by adoptFingerprintMemo).
func computeFingerprint(t *Tree) *fpMemo {
	n := t.Len()
	prev := t.fpm.Load()
	m := &fpMemo{
		node:    make([][sha256.Size]byte, n),
		valid:   make([]bool, n),
		satRank: make([]int, n),
	}

	// Satellites renumbered by first appearance in pre-order.
	rank := make(map[SatelliteID]int, len(t.satellites))
	for i := range m.satRank {
		m.satRank[i] = -1
	}
	for _, id := range t.Preorder() {
		nd := &t.nodes[id]
		if nd.Kind == SensorKind {
			r, ok := rank[nd.Satellite]
			if !ok {
				r = len(rank)
				rank[nd.Satellite] = r
			}
			m.satRank[id] = r
		}
	}

	reuse := prev != nil && len(prev.node) == n
	h := sha256.New()
	var buf [8]byte
	for _, id := range t.Postorder() {
		if reuse && prev.valid[id] && prev.satRank[id] == m.satRank[id] {
			// A valid entry certifies the whole subtree unchanged; its
			// children need not even be looked at.
			m.node[id] = prev.node[id]
			m.valid[id] = true
			continue
		}
		nd := &t.nodes[id]
		h.Reset()
		buf[0] = byte(nd.Kind)
		h.Write(buf[:1])
		writeFPFloat(h, &buf, nd.HostTime)
		writeFPFloat(h, &buf, nd.SatTime)
		writeFPFloat(h, &buf, nd.UpComm)
		writeFPInt(h, &buf, m.satRank[id])
		writeFPInt(h, &buf, len(nd.Children))
		for _, c := range nd.Children {
			h.Write(m.node[c][:])
		}
		h.Sum(m.node[id][:0])
		m.valid[id] = true
	}

	h.Reset()
	writeFPInt(h, &buf, n)
	writeFPInt(h, &buf, len(t.satellites))
	h.Write(m.node[t.root][:])
	sum := h.Sum(nil)
	m.fp = fingerprintVersion + "-" + hex.EncodeToString(sum[:16])
	return m
}

func writeFPInt(h hash.Hash, buf *[8]byte, v int) {
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
	h.Write(buf[:])
}

func writeFPFloat(h hash.Hash, buf *[8]byte, v float64) {
	// Exact bit pattern: fingerprints never round. +0/−0 collapse so the
	// two representations of "no cost" agree.
	if v == 0 {
		v = 0
	}
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	h.Write(buf[:])
}
