package model

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// fingerprintVersion prefixes every fingerprint so the hash scheme can
// evolve without silently colliding with values minted by older builds
// (cached results keyed by an old scheme simply miss).
const fingerprintVersion = "cr1"

// Fingerprint returns a canonical, order-stable content hash of the
// problem instance: two structurally identical trees — same shape in the
// same planar embedding, same execution profiles, same communication
// costs, same sensor-to-satellite partition — share a fingerprint even
// when their node and satellite names differ or they were built in a
// different construction order. It is the cache identity of a tree: the
// serving layer keys solve results by Fingerprint plus the request
// parameters (algorithm, objective weights, seed, budget).
//
// The hash covers everything the solvers read and nothing they ignore:
//   - the tree shape via each node's parent, encoded in pre-order (the
//     planar embedding is semantic: it defines the faces of the
//     assignment graph, so sibling order matters and is preserved);
//   - each node's kind, h_i, s_i and c_{i,parent} as exact float bits;
//   - the satellite partition, with satellites renumbered by first
//     appearance in pre-order so satellite identity is structural, not
//     nominal.
//
// Names and the incidental NodeID/SatelliteID numbering are excluded.
//
// The hash is memoised on the (immutable) tree, so serving paths that
// fingerprint the same tree repeatedly — cache keying plus wire-response
// building — pay for one SHA-256 pass. refreshCaches invalidates the
// memo alongside every other derived index.
func Fingerprint(t *Tree) string {
	if p := t.fp.Load(); p != nil {
		return *p
	}
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	writeFloat := func(v float64) {
		// Exact bit pattern: fingerprints never round. +0/−0 collapse so
		// the two representations of "no cost" agree.
		if v == 0 {
			v = 0
		}
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}

	pre := t.Preorder()
	writeInt(len(pre))
	writeInt(len(t.satellites))

	// Pre-order position of every node, so parents can be referenced
	// canonically regardless of how NodeIDs were handed out.
	pos := make([]int, t.Len())
	for i, id := range pre {
		pos[id] = i
	}
	// Satellites renumbered by first appearance in pre-order.
	satRank := make(map[SatelliteID]int, len(t.satellites))

	for _, id := range pre {
		n := t.Node(id)
		writeInt(int(n.Kind))
		if n.Parent == None {
			writeInt(-1)
		} else {
			writeInt(pos[n.Parent])
		}
		writeFloat(n.HostTime)
		writeFloat(n.SatTime)
		writeFloat(n.UpComm)
		if n.Kind == SensorKind {
			rank, ok := satRank[n.Satellite]
			if !ok {
				rank = len(satRank)
				satRank[n.Satellite] = rank
			}
			writeInt(rank)
		}
	}
	sum := h.Sum(nil)
	fp := fingerprintVersion + "-" + hex.EncodeToString(sum[:16])
	t.fp.Store(&fp)
	return fp
}
