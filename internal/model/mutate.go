package model

import (
	"fmt"
)

// Editor stages edits against a base Tree and produces a new validated
// Tree, leaving the base untouched (trees stay immutable; an edit is a
// copy). It is the model-layer substrate of the incremental re-solve
// engine: profile edits (execution times, communication costs) keep the
// base's node numbering and derived caches and transfer its fingerprint
// memo with only the root-to-edit paths invalidated, so re-fingerprinting
// the result is O(depth); structural edits (attach, detach, sensor
// re-homing) rebuild and re-validate from scratch.
//
// Like Builder, an Editor is single-use and error-sticky: the first
// failure is recorded, later calls no-op, and Build reports it. An Editor
// is not safe for concurrent use.
type Editor struct {
	base       *Tree
	nodes      []Node // working copy; IDs equal the base's until compaction
	satellites []Satellite
	removed    []bool   // marked by Detach; compacted away in Build
	dirty      []NodeID // profile-edited nodes (fingerprint invalidation)
	structural bool     // any edit that changes shape or the satellite partition
	satDirty   bool     // any SatTime edit (invalidates the subtree-load cache)
	err        error
}

// Edit returns an Editor staging changes against t.
func (t *Tree) Edit() *Editor {
	e := &Editor{
		base:       t,
		nodes:      make([]Node, len(t.nodes)),
		satellites: append([]Satellite(nil), t.satellites...),
		removed:    make([]bool, len(t.nodes)),
	}
	for i := range t.nodes {
		n := t.nodes[i]
		n.Children = append([]NodeID(nil), n.Children...)
		e.nodes[i] = n
	}
	return e
}

// Err returns the first recorded failure, or nil.
func (e *Editor) Err() error { return e.err }

// NodeByName returns the first live (not detached) node with the given
// name in the working set.
func (e *Editor) NodeByName(name string) (NodeID, bool) {
	for i := range e.nodes {
		if !e.removed[i] && e.nodes[i].Name == name {
			return e.nodes[i].ID, true
		}
	}
	return None, false
}

// NodeInfo returns a copy of the working node with the given ID. The
// Children slice is shared; callers must not modify it.
func (e *Editor) NodeInfo(id NodeID) (Node, bool) {
	if !e.live(id) {
		return Node{}, false
	}
	return e.nodes[id], true
}

// SetTimes updates a processing CRU's execution profile (h_i, s_i).
func (e *Editor) SetTimes(id NodeID, hostTime, satTime float64) {
	if e.err != nil || !e.check(id, "SetTimes") {
		return
	}
	n := &e.nodes[id]
	if n.Kind != Processing {
		e.fail(fmt.Errorf("model: SetTimes on sensor %q (sensors perform no processing)", n.Name))
		return
	}
	if n.HostTime == hostTime && n.SatTime == satTime {
		return
	}
	if n.SatTime != satTime {
		e.satDirty = true
	}
	n.HostTime, n.SatTime = hostTime, satTime
	e.touch(id)
}

// SetUpComm updates the cost of shipping one frame from id to its parent
// (c_{i,parent}, or c_{s,parent} for sensors).
func (e *Editor) SetUpComm(id NodeID, c float64) {
	if e.err != nil || !e.check(id, "SetUpComm") {
		return
	}
	n := &e.nodes[id]
	if n.Parent == None {
		e.fail(fmt.Errorf("model: SetUpComm on root %q (the root has no uplink)", n.Name))
		return
	}
	if n.UpComm == c {
		return
	}
	n.UpComm = c
	e.touch(id)
}

// EnsureSatellite returns the ID of the first satellite with the given
// name, registering a new one when none exists.
func (e *Editor) EnsureSatellite(name string) SatelliteID {
	for i := range e.satellites {
		if e.satellites[i].Name == name {
			return e.satellites[i].ID
		}
	}
	id := SatelliteID(len(e.satellites))
	e.satellites = append(e.satellites, Satellite{ID: id, Name: name})
	e.structural = true // the satellite set is part of the instance identity
	return id
}

// SetSensorSatellite re-homes a sensor onto another satellite. This is a
// structural edit: it changes the satellite partition, so Build re-derives
// every cache.
func (e *Editor) SetSensorSatellite(id NodeID, sat SatelliteID) {
	if e.err != nil || !e.check(id, "SetSensorSatellite") {
		return
	}
	n := &e.nodes[id]
	if n.Kind != SensorKind {
		e.fail(fmt.Errorf("model: SetSensorSatellite on processing CRU %q", n.Name))
		return
	}
	if sat < 0 || int(sat) >= len(e.satellites) {
		e.fail(fmt.Errorf("model: SetSensorSatellite(%q) references unknown satellite %d", n.Name, sat))
		return
	}
	if n.Satellite == sat {
		return
	}
	n.Satellite = sat
	e.structural = true
}

// Detach removes the subtree rooted at id. Detaching the root is an
// error; detaching the last child of a processing CRU leaves a leaf that
// is not a sensor, which Build rejects with ErrLeafNotSensor. Satellites
// that lose their last sensor stay registered (the satellite set is part
// of the instance identity and is never garbage-collected).
func (e *Editor) Detach(id NodeID) {
	if e.err != nil || !e.check(id, "Detach") {
		return
	}
	if e.nodes[id].Parent == None {
		e.fail(fmt.Errorf("model: Detach(%q) would remove the root", e.nodes[id].Name))
		return
	}
	e.structural = true
	stack := []NodeID{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		e.removed[cur] = true
		stack = append(stack, e.nodes[cur].Children...)
	}
	// Unlink from the parent; compaction drops the nodes themselves.
	p := &e.nodes[e.nodes[id].Parent]
	for i, c := range p.Children {
		if c == id {
			p.Children = append(p.Children[:i:i], p.Children[i+1:]...)
			break
		}
	}
}

// Attach grafts the Spec fragment under parent as its new rightmost
// subtree. Fragment rows with an empty Parent attach directly to parent;
// other rows reference earlier rows of the same fragment by name, exactly
// as in FromSpec. Fragment satellites are resolved by name against the
// existing set (new names register new satellites), and fragment node
// names must not collide with live node names — mutation streams address
// nodes by name, so names stay unique handles.
func (e *Editor) Attach(parent NodeID, frag *Spec) {
	if e.err != nil || !e.check(parent, "Attach") {
		return
	}
	if frag == nil || (len(frag.CRUs) == 0 && len(frag.Sensors) == 0) {
		e.fail(fmt.Errorf("model: Attach with an empty fragment"))
		return
	}
	if e.nodes[parent].Kind == SensorKind {
		e.fail(fmt.Errorf("model: Attach under sensor %q", e.nodes[parent].Name))
		return
	}
	e.structural = true
	for _, name := range frag.Satellites {
		e.EnsureSatellite(name)
	}
	ids := map[string]NodeID{}
	resolve := func(kind, name, ref string) (NodeID, bool) {
		if ref == "" {
			return parent, true
		}
		if id, ok := ids[ref]; ok {
			return id, true
		}
		e.fail(fmt.Errorf("model: fragment %s %q references parent %q before it is defined", kind, name, ref))
		return None, false
	}
	add := func(n Node, name string) (NodeID, bool) {
		if name == "" {
			e.fail(fmt.Errorf("model: fragment node has no name"))
			return None, false
		}
		if _, dup := e.NodeByName(name); dup {
			e.fail(fmt.Errorf("model: fragment node %q collides with an existing node", name))
			return None, false
		}
		if _, dup := ids[name]; dup {
			e.fail(fmt.Errorf("model: fragment defines node %q twice", name))
			return None, false
		}
		n.Name = name
		n.ID = NodeID(len(e.nodes))
		e.nodes = append(e.nodes, n)
		e.removed = append(e.removed, false)
		e.nodes[n.Parent].Children = append(e.nodes[n.Parent].Children, n.ID)
		ids[name] = n.ID
		return n.ID, true
	}
	for _, c := range frag.CRUs {
		p, ok := resolve("cru", c.Name, c.Parent)
		if !ok {
			return
		}
		if _, ok := add(Node{
			Kind: Processing, Parent: p,
			HostTime: c.HostTime, SatTime: c.SatTime, UpComm: c.Comm,
			Satellite: NoSatellite,
		}, c.Name); !ok {
			return
		}
	}
	for _, s := range frag.Sensors {
		p, ok := resolve("sensor", s.Name, s.Parent)
		if !ok {
			return
		}
		if _, ok := add(Node{
			Kind: SensorKind, Parent: p,
			UpComm:    s.Comm,
			Satellite: e.EnsureSatellite(s.Satellite),
		}, s.Name); !ok {
			return
		}
	}
}

// Build validates the staged edits and returns the resulting tree. The
// base tree is never modified. Profile-only edits take the fast path: the
// result shares the base's structural caches (they are immutable by
// contract), re-derives only the subtree satellite-load cache when a
// SatTime changed, and inherits the base's fingerprint memo with the
// root-to-edit paths invalidated. Structural edits compact the node set,
// re-validate every invariant and re-derive every cache.
func (e *Editor) Build() (*Tree, error) {
	if e.err != nil {
		return nil, e.err
	}
	if !e.structural {
		return e.buildFast()
	}
	return e.buildStructural()
}

func (e *Editor) buildFast() (*Tree, error) {
	for _, id := range e.dirty {
		n := &e.nodes[id]
		if !isFiniteNonNeg(n.HostTime) || !isFiniteNonNeg(n.SatTime) || !isFiniteNonNeg(n.UpComm) {
			return nil, fmt.Errorf("%w: node %q (h=%v s=%v c=%v)", ErrNegativeTime, n.Name, n.HostTime, n.SatTime, n.UpComm)
		}
	}
	b := e.base
	t := &Tree{nodes: e.nodes, root: b.root, satellites: e.satellites}
	// Shape is untouched: every structural cache carries over. The shared
	// slices are immutable by the Tree contract.
	t.preorder, t.postorder = b.preorder, b.postorder
	t.leaves, t.leafIndex = b.leaves, b.leafIndex
	t.leafLo, t.leafHi, t.depth = b.leafLo, b.leafHi, b.depth
	t.subSats = b.subSats
	if e.satDirty {
		t.subSat = make([]float64, len(t.nodes))
		for _, id := range t.postorder {
			t.subSat[id] = t.nodes[id].SatTime
			for _, c := range t.nodes[id].Children {
				t.subSat[id] += t.subSat[c]
			}
		}
	} else {
		t.subSat = b.subSat
	}
	t.adoptFingerprintMemo(b, e.dirty)
	t.adoptCompiledPlan(b, e.dirty)
	return t, nil
}

func (e *Editor) buildStructural() (*Tree, error) {
	remap := make([]NodeID, len(e.nodes))
	nodes := make([]Node, 0, len(e.nodes))
	for i := range e.nodes {
		if e.removed[i] {
			remap[i] = None
			continue
		}
		remap[i] = NodeID(len(nodes))
		nodes = append(nodes, e.nodes[i])
	}
	if len(nodes) == 0 {
		return nil, ErrEmptyTree
	}
	for i := range nodes {
		n := &nodes[i]
		n.ID = NodeID(i)
		if n.Parent != None {
			n.Parent = remap[n.Parent]
		}
		children := n.Children[:0]
		for _, c := range n.Children {
			if remap[c] != None {
				children = append(children, remap[c])
			}
		}
		n.Children = children
	}
	root := remap[e.base.root]
	if root == None {
		return nil, ErrNoRoot
	}
	t := &Tree{nodes: nodes, root: root, satellites: e.satellites}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	t.refreshCaches()
	return t, nil
}

func (e *Editor) live(id NodeID) bool {
	return id >= 0 && int(id) < len(e.nodes) && !e.removed[id]
}

func (e *Editor) check(id NodeID, op string) bool {
	if !e.live(id) {
		e.fail(fmt.Errorf("model: %s on unknown or detached node %d", op, id))
		return false
	}
	return true
}

func (e *Editor) touch(id NodeID) {
	e.dirty = append(e.dirty, id)
}

func (e *Editor) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}
