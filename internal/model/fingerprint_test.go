package model

import (
	"strings"
	"testing"
)

// paperish builds a small two-satellite tree; rename lets the test mint a
// structurally identical twin under different node and satellite names.
func paperish(t *testing.T, rename func(string) string) *Tree {
	t.Helper()
	if rename == nil {
		rename = func(s string) string { return s }
	}
	b := NewBuilder()
	r := b.Satellite(rename("R"))
	g := b.Satellite(rename("G"))
	root := b.Root(rename("root"), 3, 9)
	l := b.Child(root, rename("left"), 2, 6, 0.5)
	rr := b.Child(root, rename("right"), 1, 3, 0.25)
	b.Sensor(l, rename("sL"), r, 4)
	b.Sensor(rr, rename("sR"), g, 2)
	tree, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tree
}

func TestFingerprintStable(t *testing.T) {
	a := paperish(t, nil)
	if got, again := Fingerprint(a), Fingerprint(a); got != again {
		t.Fatalf("fingerprint not deterministic: %q vs %q", got, again)
	}
	if fp := Fingerprint(a); !strings.HasPrefix(fp, fingerprintVersion+"-") {
		t.Fatalf("fingerprint %q lacks version prefix", fp)
	}
}

func TestFingerprintIgnoresNames(t *testing.T) {
	a := paperish(t, nil)
	b := paperish(t, func(s string) string { return "renamed-" + s })
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatalf("renaming nodes/satellites changed the fingerprint:\n%q\n%q",
			Fingerprint(a), Fingerprint(b))
	}
}

func TestFingerprintSeesProfiles(t *testing.T) {
	a := paperish(t, nil)
	base := Fingerprint(a)

	host := a.Clone()
	host.Node(host.Root()).HostTime += 0.125
	if Fingerprint(host) == base {
		t.Fatal("host-time change not reflected in fingerprint")
	}

	comm := a.Clone()
	id, _ := comm.NodeByName("sL")
	comm.Node(id).UpComm *= 2
	if Fingerprint(comm) == base {
		t.Fatal("comm-cost change not reflected in fingerprint")
	}
}

func TestFingerprintSeesStructure(t *testing.T) {
	a := paperish(t, nil)

	// Same profiles, but both sensors on one satellite: a different
	// colour partition, hence a different assignment problem.
	b := NewBuilder()
	r := b.Satellite("R")
	b.Satellite("G")
	root := b.Root("root", 3, 9)
	l := b.Child(root, "left", 2, 6, 0.5)
	rr := b.Child(root, "right", 1, 3, 0.25)
	b.Sensor(l, "sL", r, 4)
	b.Sensor(rr, "sR", r, 2)
	mono, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if Fingerprint(a) == Fingerprint(mono) {
		t.Fatal("satellite partition change not reflected in fingerprint")
	}

	// Swapped sibling order is a different planar embedding.
	c := NewBuilder()
	cr := c.Satellite("R")
	cg := c.Satellite("G")
	croot := c.Root("root", 3, 9)
	crr := c.Child(croot, "right", 1, 3, 0.25)
	cl := c.Child(croot, "left", 2, 6, 0.5)
	c.Sensor(crr, "sR", cg, 2)
	c.Sensor(cl, "sL", cr, 4)
	swapped, err := c.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if Fingerprint(a) == Fingerprint(swapped) {
		t.Fatal("sibling order change not reflected in fingerprint")
	}
}

func TestFingerprintSpecRoundTrip(t *testing.T) {
	a := paperish(t, nil)
	back, err := FromSpec(ToSpec(a, "twin"))
	if err != nil {
		t.Fatalf("FromSpec: %v", err)
	}
	if Fingerprint(a) != Fingerprint(back) {
		t.Fatalf("ToSpec→FromSpec changed the fingerprint:\n%q\n%q",
			Fingerprint(a), Fingerprint(back))
	}
}
