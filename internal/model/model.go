package model

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// NodeID identifies a node (processing CRU or sensor) inside one Tree.
// IDs are dense indices in [0, Tree.Len()).
type NodeID int

// None is the sentinel NodeID used for "no node" (e.g. the root's parent).
const None NodeID = -1

// SatelliteID identifies a satellite of the star network. The host is not a
// satellite; it is represented by the distinct Location value Host.
type SatelliteID int

// NoSatellite is the sentinel for "not attached to any satellite", used for
// processing CRUs whose subtree spans several satellites.
const NoSatellite SatelliteID = -1

// Kind distinguishes processing CRUs from sensors. Sensors are "a kind of
// CRU at the leaf level which does not perform any context processing"
// (paper §3): they have no execution times and are physically bound to a
// satellite.
type Kind uint8

const (
	// Processing marks a CRU that executes reasoning work (h_i, s_i > 0
	// allowed) and may be placed on the host or its correspondent satellite.
	Processing Kind = iota
	// SensorKind marks a leaf sensor: it captures raw context, performs no
	// processing, and is pinned to the satellite it is wired to.
	SensorKind
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Processing:
		return "cru"
	case SensorKind:
		return "sensor"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Node is one vertex of a CRU tree. For Processing nodes, HostTime and
// SatTime are the per-frame execution times h_i and s_i of the paper, and
// UpComm is c_{i,parent}: the time to ship one processed frame from this CRU
// to its parent over the host↔satellite link. For sensors, UpComm is
// c_{s,parent}: the time to ship one raw frame to the parent CRU, and
// Satellite records the physical attachment.
type Node struct {
	ID       NodeID
	Name     string
	Kind     Kind
	Parent   NodeID   // None for the root
	Children []NodeID // ordered left-to-right; defines the planar embedding

	HostTime float64 // h_i; 0 for sensors
	SatTime  float64 // s_i; 0 for sensors
	UpComm   float64 // c_{i,parent} (or c_{s,parent} for sensors); 0 for the root

	Satellite SatelliteID // physical attachment; NoSatellite unless Kind == SensorKind
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Satellite describes one satellite of the star network.
type Satellite struct {
	ID   SatelliteID
	Name string // also used as the "colour" name in reports (e.g. "R", "B")
}

// Tree is a validated, immutable ordered CRU tree together with its satellite
// set and cached structural indices. Construct one with Builder or FromSpec;
// the zero Tree is not usable.
//
// Structural invariants (checked by Validate, guaranteed after Build):
//   - exactly one root; parent/child links are mutually consistent and
//     acyclic; Children orders are permutation-free (no duplicates);
//   - every leaf is a sensor and every sensor is a leaf;
//   - sensors reference existing satellites;
//   - all times and communication costs are finite and non-negative.
type Tree struct {
	nodes      []Node
	root       NodeID
	satellites []Satellite

	// Caches, all derived during Build/refreshCaches.
	preorder  []NodeID        // DFS pre-order, children visited left-to-right
	postorder []NodeID        // DFS post-order
	leaves    []NodeID        // sensors in left-to-right (planar) order
	leafIndex map[NodeID]int  // sensor -> position in leaves (0-based)
	leafLo    []int           // per node: first leaf position in its subtree
	leafHi    []int           // per node: last leaf position in its subtree
	depth     []int           // per node: root has depth 0
	subSat    []float64       // per node: Σ SatTime over its subtree
	subSats   [][]SatelliteID // per node: sorted distinct satellites under it

	fpm atomic.Pointer[fpMemo]   // memoised Fingerprint state; cleared by refreshCaches
	cpl atomic.Pointer[Compiled] // memoised Compile plan; cleared by refreshCaches
}

// Len returns the number of nodes (processing CRUs plus sensors).
func (t *Tree) Len() int { return len(t.nodes) }

// Root returns the root node's ID.
func (t *Tree) Root() NodeID { return t.root }

// Node returns the node with the given ID. It panics on out-of-range IDs,
// matching slice semantics; IDs always come from the tree itself.
func (t *Tree) Node(id NodeID) *Node { return &t.nodes[id] }

// Satellites returns the satellites in ID order. The returned slice is
// shared; callers must not modify it.
func (t *Tree) Satellites() []Satellite { return t.satellites }

// SatelliteByID returns the satellite record for id.
func (t *Tree) SatelliteByID(id SatelliteID) (Satellite, bool) {
	if id < 0 || int(id) >= len(t.satellites) {
		return Satellite{}, false
	}
	return t.satellites[id], true
}

// SatelliteName returns a printable name for id ("?" when unknown).
func (t *Tree) SatelliteName(id SatelliteID) string {
	if s, ok := t.SatelliteByID(id); ok {
		return s.Name
	}
	return "?"
}

// NodeByName returns the first node with the given name.
func (t *Tree) NodeByName(name string) (NodeID, bool) {
	for i := range t.nodes {
		if t.nodes[i].Name == name {
			return t.nodes[i].ID, true
		}
	}
	return None, false
}

// Preorder returns the nodes in DFS pre-order (root first, children
// left-to-right). The slice is shared; callers must not modify it.
func (t *Tree) Preorder() []NodeID { return t.preorder }

// Postorder returns the nodes in DFS post-order (children before parents).
func (t *Tree) Postorder() []NodeID { return t.postorder }

// Leaves returns the sensors in left-to-right planar order. This order
// defines the faces of the assignment graph.
func (t *Tree) Leaves() []NodeID { return t.leaves }

// LeafPosition returns the 0-based position of sensor id in the planar leaf
// order, or -1 if id is not a sensor.
func (t *Tree) LeafPosition(id NodeID) int {
	if p, ok := t.leafIndex[id]; ok {
		return p
	}
	return -1
}

// LeafRange returns the inclusive range [lo, hi] of leaf positions covered by
// the subtree rooted at id. For a sensor, lo == hi == its own position.
func (t *Tree) LeafRange(id NodeID) (lo, hi int) { return t.leafLo[id], t.leafHi[id] }

// Depth returns the number of edges between the root and id.
func (t *Tree) Depth(id NodeID) int { return t.depth[id] }

// SubtreeSatTime returns Σ s_k over all nodes in the subtree rooted at id
// (sensors contribute 0). This is the satellite-processing part of the
// bottleneck weight β for the dual edge crossing the edge above id.
func (t *Tree) SubtreeSatTime(id NodeID) float64 { return t.subSat[id] }

// SubtreeSatellites returns the sorted distinct satellites that sensors in
// the subtree of id attach to. Length 0 can only happen for a sensor-free
// subtree, which Validate rejects, so for a valid tree the length is >= 1;
// length 1 identifies the node's correspondent satellite; length >= 2 marks a
// colour conflict. The returned slice is shared; callers must not modify it.
func (t *Tree) SubtreeSatellites(id NodeID) []SatelliteID { return t.subSats[id] }

// CorrespondentSatellite returns the unique satellite serving the subtree of
// id, or NoSatellite (and false) when the subtree spans zero or several
// satellites.
func (t *Tree) CorrespondentSatellite(id NodeID) (SatelliteID, bool) {
	if s := t.subSats[id]; len(s) == 1 {
		return s[0], true
	}
	return NoSatellite, false
}

// IsAncestorOrSelf reports whether a is b or one of b's ancestors. It runs in
// O(1) using the cached leaf ranges plus depth (a is an ancestor of b iff a's
// leaf interval contains b's and a is not deeper).
func (t *Tree) IsAncestorOrSelf(a, b NodeID) bool {
	return t.leafLo[a] <= t.leafLo[b] && t.leafHi[b] <= t.leafHi[a] && t.depth[a] <= t.depth[b]
}

// ProcessingCount returns the number of processing CRUs.
func (t *Tree) ProcessingCount() int {
	n := 0
	for i := range t.nodes {
		if t.nodes[i].Kind == Processing {
			n++
		}
	}
	return n
}

// SensorCount returns the number of sensors.
func (t *Tree) SensorCount() int { return len(t.leaves) }

// Edges returns all (parent, child) pairs in pre-order of the child. The
// slice is freshly allocated.
func (t *Tree) Edges() [][2]NodeID {
	edges := make([][2]NodeID, 0, t.Len()-1)
	for _, id := range t.preorder {
		if p := t.nodes[id].Parent; p != None {
			edges = append(edges, [2]NodeID{p, id})
		}
	}
	return edges
}

// TotalHostTime returns Σ h_i over all processing CRUs: the delay of the
// trivial everything-on-host assignment.
func (t *Tree) TotalHostTime() float64 {
	var sum float64
	for i := range t.nodes {
		sum += t.nodes[i].HostTime
	}
	return sum
}

// Clone returns a deep copy of the tree. The copy shares nothing with the
// original, so callers may mutate node profiles (times, costs) and re-run
// refreshCaches via Builder if structure changes are needed.
func (t *Tree) Clone() *Tree {
	cp := &Tree{
		nodes:      make([]Node, len(t.nodes)),
		root:       t.root,
		satellites: append([]Satellite(nil), t.satellites...),
	}
	for i := range t.nodes {
		n := t.nodes[i]
		n.Children = append([]NodeID(nil), n.Children...)
		cp.nodes[i] = n
	}
	cp.refreshCaches()
	return cp
}

// ScaleProfiles returns a clone with every host time multiplied by hostMul,
// every satellite time by satMul, and every communication cost by commMul.
// It is the workhorse of heterogeneity sweeps (experiment E12).
func (t *Tree) ScaleProfiles(hostMul, satMul, commMul float64) *Tree {
	cp := t.Clone()
	for i := range cp.nodes {
		cp.nodes[i].HostTime *= hostMul
		cp.nodes[i].SatTime *= satMul
		cp.nodes[i].UpComm *= commMul
	}
	cp.refreshCaches()
	return cp
}

// String renders a short human-readable summary.
func (t *Tree) String() string {
	return fmt.Sprintf("Tree{%d CRUs, %d sensors, %d satellites}",
		t.ProcessingCount(), t.SensorCount(), len(t.satellites))
}

// Render returns an indented multi-line drawing of the tree, one node per
// line, for logs and CLI output.
func (t *Tree) Render() string {
	var b strings.Builder
	var walk func(id NodeID, indent int)
	walk = func(id NodeID, indent int) {
		n := &t.nodes[id]
		b.WriteString(strings.Repeat("  ", indent))
		switch n.Kind {
		case SensorKind:
			fmt.Fprintf(&b, "%s [sensor @%s, c=%.3g]\n", n.Name, t.SatelliteName(n.Satellite), n.UpComm)
		default:
			fmt.Fprintf(&b, "%s [h=%.3g s=%.3g c=%.3g]\n", n.Name, n.HostTime, n.SatTime, n.UpComm)
		}
		for _, c := range n.Children {
			walk(c, indent+1)
		}
	}
	walk(t.root, 0)
	return b.String()
}

// refreshCaches recomputes every derived index. It assumes the structural
// invariants hold (call Validate first when in doubt).
func (t *Tree) refreshCaches() {
	t.fpm.Store(nil)
	t.cpl.Store(nil)
	n := len(t.nodes)
	t.preorder = make([]NodeID, 0, n)
	t.postorder = make([]NodeID, 0, n)
	t.leaves = t.leaves[:0]
	t.leafIndex = make(map[NodeID]int)
	t.leafLo = make([]int, n)
	t.leafHi = make([]int, n)
	t.depth = make([]int, n)
	t.subSat = make([]float64, n)
	t.subSats = make([][]SatelliteID, n)

	type frame struct {
		id    NodeID
		child int
	}
	stack := []frame{{t.root, 0}}
	t.depth[t.root] = 0
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		node := &t.nodes[f.id]
		if f.child == 0 {
			t.preorder = append(t.preorder, f.id)
			if node.IsLeaf() {
				t.leafLo[f.id] = len(t.leaves)
				t.leafHi[f.id] = len(t.leaves)
				t.leafIndex[f.id] = len(t.leaves)
				t.leaves = append(t.leaves, f.id)
			}
		}
		if f.child < len(node.Children) {
			c := node.Children[f.child]
			f.child++
			t.depth[c] = t.depth[f.id] + 1
			stack = append(stack, frame{c, 0})
			continue
		}
		stack = stack[:len(stack)-1]
		t.postorder = append(t.postorder, f.id)
	}

	// Post-order accumulation of subtree data.
	for _, id := range t.postorder {
		node := &t.nodes[id]
		t.subSat[id] = node.SatTime
		if node.Kind == SensorKind {
			t.subSats[id] = []SatelliteID{node.Satellite}
			continue
		}
		if len(node.Children) > 0 {
			t.leafLo[id] = t.leafLo[node.Children[0]]
			t.leafHi[id] = t.leafHi[node.Children[len(node.Children)-1]]
		}
		set := map[SatelliteID]bool{}
		for _, c := range node.Children {
			t.subSat[id] += t.subSat[c]
			for _, s := range t.subSats[c] {
				set[s] = true
			}
		}
		sats := make([]SatelliteID, 0, len(set))
		for s := range set {
			sats = append(sats, s)
		}
		sort.Slice(sats, func(i, j int) bool { return sats[i] < sats[j] })
		t.subSats[id] = sats
	}
}

// Validation errors returned by Validate / Builder.Build.
var (
	ErrEmptyTree      = errors.New("model: tree has no nodes")
	ErrNoRoot         = errors.New("model: tree has no root")
	ErrMultipleRoots  = errors.New("model: tree has multiple roots")
	ErrCycle          = errors.New("model: parent links contain a cycle or unreachable node")
	ErrLeafNotSensor  = errors.New("model: leaf node is not a sensor (every leaf must capture raw context)")
	ErrSensorNotLeaf  = errors.New("model: sensor has children")
	ErrSensorNoSat    = errors.New("model: sensor is not attached to a satellite")
	ErrUnknownSat     = errors.New("model: sensor references an unknown satellite")
	ErrNegativeTime   = errors.New("model: negative or non-finite time/cost")
	ErrBadLink        = errors.New("model: inconsistent parent/child links")
	ErrRootIsSensor   = errors.New("model: root is a sensor")
	ErrSensorHasWork  = errors.New("model: sensor has non-zero processing time")
	ErrDuplicateChild = errors.New("model: duplicate child reference")
)

// Validate checks every structural invariant and returns the first violation
// found (wrapped with node context), or nil.
func (t *Tree) Validate() error {
	if len(t.nodes) == 0 {
		return ErrEmptyTree
	}
	roots := 0
	for i := range t.nodes {
		n := &t.nodes[i]
		if n.ID != NodeID(i) {
			return fmt.Errorf("%w: node %d has ID %d", ErrBadLink, i, n.ID)
		}
		if n.Parent == None {
			roots++
		} else if n.Parent < 0 || int(n.Parent) >= len(t.nodes) {
			return fmt.Errorf("%w: node %q has out-of-range parent %d", ErrBadLink, n.Name, n.Parent)
		}
		if !isFiniteNonNeg(n.HostTime) || !isFiniteNonNeg(n.SatTime) || !isFiniteNonNeg(n.UpComm) {
			return fmt.Errorf("%w: node %q (h=%v s=%v c=%v)", ErrNegativeTime, n.Name, n.HostTime, n.SatTime, n.UpComm)
		}
		seen := map[NodeID]bool{}
		for _, c := range n.Children {
			if c < 0 || int(c) >= len(t.nodes) {
				return fmt.Errorf("%w: node %q has out-of-range child %d", ErrBadLink, n.Name, c)
			}
			if seen[c] {
				return fmt.Errorf("%w: node %q lists child %d twice", ErrDuplicateChild, n.Name, c)
			}
			seen[c] = true
			if t.nodes[c].Parent != n.ID {
				return fmt.Errorf("%w: node %q lists child %q whose parent is %d", ErrBadLink, n.Name, t.nodes[c].Name, t.nodes[c].Parent)
			}
		}
		switch n.Kind {
		case SensorKind:
			if len(n.Children) > 0 {
				return fmt.Errorf("%w: %q", ErrSensorNotLeaf, n.Name)
			}
			if n.Satellite == NoSatellite {
				return fmt.Errorf("%w: %q", ErrSensorNoSat, n.Name)
			}
			if _, ok := t.SatelliteByID(n.Satellite); !ok {
				return fmt.Errorf("%w: %q -> satellite %d", ErrUnknownSat, n.Name, n.Satellite)
			}
			if n.HostTime != 0 || n.SatTime != 0 {
				return fmt.Errorf("%w: %q", ErrSensorHasWork, n.Name)
			}
		default:
			if len(n.Children) == 0 {
				return fmt.Errorf("%w: %q", ErrLeafNotSensor, n.Name)
			}
		}
	}
	if roots == 0 {
		return ErrNoRoot
	}
	if roots > 1 {
		return ErrMultipleRoots
	}
	if t.nodes[t.root].Parent != None {
		return fmt.Errorf("%w: recorded root %d has a parent", ErrBadLink, t.root)
	}
	if t.nodes[t.root].Kind == SensorKind {
		return ErrRootIsSensor
	}
	// Reachability: every node must be reached from the root exactly once.
	visited := make([]bool, len(t.nodes))
	count := 0
	stack := []NodeID{t.root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[id] {
			return fmt.Errorf("%w: node %d reached twice", ErrCycle, id)
		}
		visited[id] = true
		count++
		stack = append(stack, t.nodes[id].Children...)
	}
	if count != len(t.nodes) {
		return fmt.Errorf("%w: %d of %d nodes reachable from root", ErrCycle, count, len(t.nodes))
	}
	return nil
}

func isFiniteNonNeg(x float64) bool {
	return x >= 0 && x == x && x <= 1e300 // rejects NaN, -x, ±Inf
}
