// Package model defines the data model of the paper: ordered CRU trees
// (Context Reasoning Units) whose leaves are sensors physically attached to
// the satellites of a host–satellites star network, per-CRU execution
// profiles (host time h_i, satellite time s_i), per-edge communication
// costs, and assignments of CRUs onto the host or their correspondent
// satellites.
//
// The model is deliberately self-contained: every other package (colouring,
// assignment-graph construction, solvers, simulator, workload generators)
// builds on the invariants established and validated here.
package model
