package model

import (
	"fmt"
	"sort"
	"strings"
)

// Location says where a CRU executes: on the host or on one satellite.
// The zero value is the host, so a zero-filled assignment is the valid
// everything-on-host assignment.
type Location struct {
	sat SatelliteID // NoSatellite-1 shifted encoding: 0 == host
}

// Host is the Location of the host machine.
var Host = Location{sat: 0}

// OnSatellite returns the Location of the given satellite.
func OnSatellite(id SatelliteID) Location { return Location{sat: id + 1} }

// IsHost reports whether the location is the host.
func (l Location) IsHost() bool { return l.sat == 0 }

// Satellite returns the satellite of a non-host location; ok is false for
// the host.
func (l Location) Satellite() (SatelliteID, bool) {
	if l.sat == 0 {
		return NoSatellite, false
	}
	return l.sat - 1, true
}

// String implements fmt.Stringer.
func (l Location) String() string {
	if l.IsHost() {
		return "host"
	}
	s, _ := l.Satellite()
	return fmt.Sprintf("sat(%d)", s)
}

// Assignment places every node of one Tree onto a Location. Sensors are
// always implicitly located on their physical satellite; their entries exist
// for uniformity and are forced by Normalize/Validate.
type Assignment struct {
	Loc []Location // indexed by NodeID
}

// NewAssignment returns an everything-on-host assignment for t (sensors
// pinned to their satellites).
func NewAssignment(t *Tree) *Assignment {
	a := &Assignment{Loc: make([]Location, t.Len())}
	for _, leaf := range t.Leaves() {
		a.Loc[leaf] = OnSatellite(t.Node(leaf).Satellite)
	}
	return a
}

// Clone returns a deep copy.
func (a *Assignment) Clone() *Assignment {
	return &Assignment{Loc: append([]Location(nil), a.Loc...)}
}

// Set places node id at loc.
func (a *Assignment) Set(id NodeID, loc Location) { a.Loc[id] = loc }

// At returns the location of node id.
func (a *Assignment) At(id NodeID) Location { return a.Loc[id] }

// HostSet returns the IDs of processing CRUs placed on the host, in
// pre-order of t.
func (a *Assignment) HostSet(t *Tree) []NodeID {
	var out []NodeID
	for _, id := range t.Preorder() {
		if t.Node(id).Kind == Processing && a.Loc[id].IsHost() {
			out = append(out, id)
		}
	}
	return out
}

// Validate checks that the assignment is feasible for t:
//
//  1. every sensor sits on its physical satellite;
//  2. the root is on the host (the context-aware application runs there);
//  3. the host set is closed upwards: a CRU on the host never has an
//     ancestor on a satellite (context flows satellites -> host only);
//  4. every satellite-resident CRU sits on its correspondent satellite (the
//     unique satellite all sensors below it attach to).
//
// Rules 3+4 together imply each satellite executes a union of disjoint
// subtrees, exactly the cuts the assignment graph encodes.
func (a *Assignment) Validate(t *Tree) error {
	if len(a.Loc) != t.Len() {
		return fmt.Errorf("model: assignment covers %d nodes, tree has %d", len(a.Loc), t.Len())
	}
	if !a.Loc[t.Root()].IsHost() {
		return fmt.Errorf("model: root %q must be on the host", t.Node(t.Root()).Name)
	}
	for _, id := range t.Preorder() {
		n := t.Node(id)
		loc := a.Loc[id]
		if n.Kind == SensorKind {
			s, ok := loc.Satellite()
			if !ok || s != n.Satellite {
				return fmt.Errorf("model: sensor %q must stay on satellite %s, got %v",
					n.Name, t.SatelliteName(n.Satellite), loc)
			}
			continue
		}
		if sat, onSat := loc.Satellite(); onSat {
			corr, ok := t.CorrespondentSatellite(id)
			if !ok {
				return fmt.Errorf("model: CRU %q spans satellites %v and cannot leave the host",
					n.Name, t.SubtreeSatellites(id))
			}
			if corr != sat {
				return fmt.Errorf("model: CRU %q assigned to %s but its correspondent satellite is %s",
					n.Name, t.SatelliteName(sat), t.SatelliteName(corr))
			}
			if p := n.Parent; p != None {
				ploc := a.Loc[p]
				if psat, pOnSat := ploc.Satellite(); pOnSat && psat != sat {
					return fmt.Errorf("model: CRU %q on %s under parent on %s",
						n.Name, t.SatelliteName(sat), t.SatelliteName(psat))
				}
			}
		} else if p := n.Parent; p != None && !a.Loc[p].IsHost() {
			// Host CRU below a satellite CRU: context would have to flow
			// host -> satellite, which the model forbids.
			return fmt.Errorf("model: CRU %q on host below satellite-resident parent %q",
				n.Name, t.Node(p).Name)
		}
	}
	return nil
}

// CutEdges returns the tree edges (parent, child) whose parent side is on
// the host while the child side is on a satellite — the communication cut of
// the assignment. Sensor edges whose parent CRU is on the host are included
// (raw frames must be uplinked). Edges are reported in pre-order of the
// child.
func (a *Assignment) CutEdges(t *Tree) [][2]NodeID {
	var out [][2]NodeID
	for _, id := range t.Preorder() {
		p := t.Node(id).Parent
		if p == None {
			continue
		}
		if a.Loc[p].IsHost() && !a.Loc[id].IsHost() {
			out = append(out, [2]NodeID{p, id})
		}
	}
	return out
}

// Key returns a canonical string form, useful for de-duplication in tests
// and search frontiers.
func (a *Assignment) Key() string {
	var b strings.Builder
	for i, l := range a.Loc {
		if i > 0 {
			b.WriteByte(',')
		}
		if l.IsHost() {
			b.WriteByte('h')
		} else {
			s, _ := l.Satellite()
			fmt.Fprintf(&b, "%d", s)
		}
	}
	return b.String()
}

// Describe renders a human-readable multi-line description grouped by
// location.
func (a *Assignment) Describe(t *Tree) string {
	groups := map[string][]string{}
	for _, id := range t.Preorder() {
		n := t.Node(id)
		if n.Kind != Processing {
			continue
		}
		key := "host"
		if s, onSat := a.Loc[id].Satellite(); onSat {
			key = "satellite " + t.SatelliteName(s)
		}
		groups[key] = append(groups[key], n.Name)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-14s %s\n", k+":", strings.Join(groups[k], " "))
	}
	return b.String()
}
