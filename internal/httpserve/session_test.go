package httpserve

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/api"
)

func openSession(t *testing.T, baseURL string) api.SessionResponse {
	t.Helper()
	resp, body := post(t, baseURL+"/v1/session", api.OpenSessionRequest{
		SolveRequest: api.SolveRequest{Spec: testSpec("dyn")},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open: status %d: %s", resp.StatusCode, body)
	}
	var sr api.SessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	return sr
}

func TestSessionLifecycle(t *testing.T) {
	srv, _ := newTestServer(t, Config{})

	opened := openSession(t, srv.URL)
	if opened.Session.SessionID == "" || opened.Session.Revision != 0 || opened.Session.Nodes != 5 {
		t.Fatalf("open response: %+v", opened)
	}

	// Resolve revision 0.
	resp, body := post(t, srv.URL+"/v1/session/"+opened.Session.SessionID+"/resolve", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resolve: status %d: %s", resp.StatusCode, body)
	}
	var resolved api.SessionResponse
	if err := json.Unmarshal(body, &resolved); err != nil {
		t.Fatal(err)
	}
	if resolved.Response == nil || resolved.Response.Delay <= 0 || resolved.Response.Cached {
		t.Fatalf("resolve response: %+v", resolved.Response)
	}

	// Mutate + resolve in one round trip: drift one host time.
	h := 42.0
	resp, body = post(t, srv.URL+"/v1/session/"+opened.Session.SessionID+"/mutate", api.MutateRequest{
		Mutations: []api.Mutation{{Op: api.OpWeightUpdate, Node: "left", HostTime: &h}},
		Resolve:   true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: status %d: %s", resp.StatusCode, body)
	}
	var mutated api.SessionResponse
	if err := json.Unmarshal(body, &mutated); err != nil {
		t.Fatal(err)
	}
	if mutated.Session.Revision != 1 || mutated.Response == nil {
		t.Fatalf("mutate response: %+v", mutated)
	}
	if mutated.Session.Fingerprint == opened.Session.Fingerprint {
		t.Fatal("mutation did not change the fingerprint")
	}

	// Reverting the drift returns to revision 0's fingerprint and the
	// shared cache answers the resolve.
	h0 := 2.0
	resp, body = post(t, srv.URL+"/v1/session/"+opened.Session.SessionID+"/mutate", api.MutateRequest{
		Mutations: []api.Mutation{{Op: api.OpWeightUpdate, Node: "left", HostTime: &h0}},
		Resolve:   true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("revert: status %d: %s", resp.StatusCode, body)
	}
	var reverted api.SessionResponse
	if err := json.Unmarshal(body, &reverted); err != nil {
		t.Fatal(err)
	}
	if reverted.Session.Fingerprint != opened.Session.Fingerprint {
		t.Fatal("revert did not restore the fingerprint")
	}
	if reverted.Response == nil || !reverted.Response.Cached {
		t.Fatalf("revert resolve should hit the cache: %+v", reverted.Response)
	}

	// GET reflects the state; DELETE closes; further use is not_found.
	getResp, err := http.Get(srv.URL + "/v1/session/" + opened.Session.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusOK {
		t.Fatalf("get: status %d", getResp.StatusCode)
	}
	del, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/session/"+opened.Session.SessionID, nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", delResp.StatusCode)
	}
	resp, body = post(t, srv.URL+"/v1/session/"+opened.Session.SessionID+"/resolve", struct{}{})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("resolve after close: status %d: %s", resp.StatusCode, body)
	}
	var apiErr api.Error
	if err := json.Unmarshal(body, &apiErr); err != nil || apiErr.Code != api.CodeNotFound {
		t.Fatalf("error body: %s", body)
	}
}

func TestSessionMutateErrors(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	opened := openSession(t, srv.URL)
	url := srv.URL + "/v1/session/" + opened.Session.SessionID + "/mutate"

	h := 1.0
	cases := []api.MutateRequest{
		{}, // empty mutation list
		{Mutations: []api.Mutation{{Op: "warp", Node: "left"}}},
		{Mutations: []api.Mutation{{Op: api.OpWeightUpdate, Node: "left"}}},                // changes nothing
		{Mutations: []api.Mutation{{Op: api.OpWeightUpdate, Node: "ghost", HostTime: &h}}}, // unknown node
		{Mutations: []api.Mutation{{Op: api.OpDetachSubtree, Node: "root"}}},               // cannot detach root
	}
	for i, req := range cases {
		resp, body := post(t, url, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	// The session is untouched by the failures.
	getResp, err := http.Get(srv.URL + "/v1/session/" + opened.Session.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	var state api.SessionResponse
	if err := json.NewDecoder(getResp.Body).Decode(&state); err != nil {
		t.Fatal(err)
	}
	if state.Session.Revision != 0 || state.Session.Fingerprint != opened.Session.Fingerprint {
		t.Fatalf("failed mutations advanced the session: %+v", state.Session)
	}
}

func TestSessionEvictionAndTTL(t *testing.T) {
	srv, _ := newTestServer(t, Config{MaxSessions: 2, SessionTTL: -1})
	first := openSession(t, srv.URL)
	openSession(t, srv.URL)
	time.Sleep(5 * time.Millisecond) // LRU order is by wall clock
	openSession(t, srv.URL)          // evicts `first`

	resp, body := post(t, srv.URL+"/v1/session/"+first.Session.SessionID+"/resolve", struct{}{})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session still live: status %d: %s", resp.StatusCode, body)
	}
}

func TestSessionUnknownID(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	resp, body := post(t, srv.URL+"/v1/session/deadbeef/resolve", struct{}{})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
}
