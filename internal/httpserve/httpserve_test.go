package httpserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/api"
)

func testSpec(name string) *repro.Spec {
	return &repro.Spec{
		Name:       name,
		Satellites: []string{"R", "G"},
		CRUs: []repro.SpecCRU{
			{Name: "root", HostTime: 3, SatTime: 9},
			{Name: "left", Parent: "root", HostTime: 2, SatTime: 6, Comm: 0.5},
			{Name: "right", Parent: "root", HostTime: 1, SatTime: 3, Comm: 0.25},
		},
		Sensors: []repro.SpecSensor{
			{Name: "sL", Parent: "left", Satellite: "R", Comm: 4},
			{Name: "sR", Parent: "right", Satellite: "G", Comm: 2},
		},
	}
}

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *repro.Service) {
	t.Helper()
	if cfg.Service == nil {
		cfg.Service = repro.NewService(nil, 128)
	}
	h := New(cfg)
	srv := httptest.NewServer(h)
	t.Cleanup(func() {
		srv.Close()
		h.Close()
	})
	return srv, cfg.Service
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestSolveEndpoint(t *testing.T) {
	srv, svc := newTestServer(t, Config{})

	req := api.SolveRequest{Spec: testSpec("s")}
	resp, body := post(t, srv.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr api.SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	if sr.APIVersion != api.Version || sr.Algorithm != string(repro.AdaptedSSB) || !sr.Exact {
		t.Fatalf("response %+v", sr)
	}
	if sr.Cached {
		t.Fatal("first request reported cached")
	}
	if sr.Fingerprint == "" || sr.Assignment["root"] != "host" {
		t.Fatalf("response %+v", sr)
	}

	// The identical request again is a cache hit with the same answer.
	resp2, body2 := post(t, srv.URL+"/v1/solve", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp2.StatusCode)
	}
	var sr2 api.SolveResponse
	if err := json.Unmarshal(body2, &sr2); err != nil {
		t.Fatal(err)
	}
	if !sr2.Cached {
		t.Fatal("repeat request not served from cache")
	}
	if sr2.Delay != sr.Delay || sr2.Fingerprint != sr.Fingerprint {
		t.Fatalf("cached answer diverged: %+v vs %+v", sr2, sr)
	}
	if st := svc.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats %+v, want 1 miss + 1 hit", st)
	}
}

func TestSolveErrors(t *testing.T) {
	srv, _ := newTestServer(t, Config{})

	check := func(body any, wantStatus int, wantCode api.ErrorCode) {
		t.Helper()
		resp, raw := post(t, srv.URL+"/v1/solve", body)
		if resp.StatusCode != wantStatus {
			t.Fatalf("status %d, want %d: %s", resp.StatusCode, wantStatus, raw)
		}
		var e api.Error
		if err := json.Unmarshal(raw, &e); err != nil || e.Code != wantCode {
			t.Fatalf("error body %s, want code %s", raw, wantCode)
		}
	}

	check(api.SolveRequest{}, http.StatusBadRequest, api.CodeInvalidRequest)
	check(api.SolveRequest{Spec: testSpec("x"), Algorithm: "no-such"},
		http.StatusBadRequest, api.CodeUnknownAlgorithm)
	check(map[string]any{"spec": testSpec("y"), "algorithmm": "typo"},
		http.StatusBadRequest, api.CodeInvalidRequest)

	// Malformed spec: sensor on an undeclared satellite.
	bad := testSpec("z")
	bad.Sensors[0].Satellite = "nope"
	check(api.SolveRequest{Spec: bad}, http.StatusBadRequest, api.CodeInvalidRequest)
}

func TestBatchEndpoint(t *testing.T) {
	srv, svc := newTestServer(t, Config{})

	good := testSpec("a")
	scaled := testSpec("b")
	scaled.CRUs[1].HostTime = 7 // a genuinely different instance
	bad := testSpec("c")
	bad.Sensors[0].Satellite = "nope"

	req := api.BatchRequest{Items: []api.SolveRequest{
		{Spec: good},
		{Spec: bad},
		{Spec: scaled},
		{Spec: good}, // duplicate of item 0: dedup inside the batch
	}}
	resp, body := post(t, srv.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br api.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Items) != 4 {
		t.Fatalf("%d items, want 4", len(br.Items))
	}
	for _, i := range []int{0, 2, 3} {
		if br.Items[i].Error != nil {
			t.Fatalf("item %d failed: %+v", i, br.Items[i].Error)
		}
	}
	if br.Items[1].Error == nil || br.Items[1].Error.Code != api.CodeInvalidRequest {
		t.Fatalf("bad item survived: %+v", br.Items[1])
	}
	if br.Items[0].Response.Fingerprint != br.Items[3].Response.Fingerprint {
		t.Fatal("duplicate items got different fingerprints")
	}
	if br.Items[0].Response.Fingerprint == br.Items[2].Response.Fingerprint {
		t.Fatal("distinct instances share a fingerprint")
	}
	// The duplicated instance must have been solved once: 2 unique
	// solves (misses) for 3 solvable items.
	if st := svc.Stats(); st.Misses != 2 || st.Hits+st.Shared != 1 {
		t.Fatalf("stats %+v, want 2 misses and 1 hit/shared", st)
	}

	// Oversized batches are rejected up front.
	small, _ := newTestServer(t, Config{MaxBatchItems: 1})
	resp2, raw := post(t, small.URL+"/v1/batch", req)
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d body %s", resp2.StatusCode, raw)
	}
}

// TestConcurrentIdenticalRequests is the serving-layer dedup guarantee:
// N concurrent identical requests produce exactly one underlying solve —
// whichever way they interleave, every request beyond the first is a
// cache hit or joins the in-flight solve.
func TestConcurrentIdenticalRequests(t *testing.T) {
	srv, svc := newTestServer(t, Config{})
	const n = 8

	req := api.SolveRequest{Spec: testSpec("dup")}
	var wg sync.WaitGroup
	delays := make([]float64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := post(t, srv.URL+"/v1/solve", req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			var sr api.SolveResponse
			if err := json.Unmarshal(body, &sr); err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			delays[i] = sr.Delay
		}(i)
	}
	wg.Wait()

	st := svc.Stats()
	if st.Misses != 1 {
		t.Fatalf("%d identical concurrent requests ran %d solves, want 1 (stats %+v)", n, st.Misses, st)
	}
	if st.Hits+st.Shared != n-1 {
		t.Fatalf("hits(%d)+shared(%d) != %d (stats %+v)", st.Hits, st.Shared, n-1, st)
	}
	for i := 1; i < n; i++ {
		if delays[i] != delays[0] {
			t.Fatalf("request %d got delay %v, request 0 got %v", i, delays[i], delays[0])
		}
	}
}

func TestSimulateEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, Config{})

	req := api.SimulateRequest{
		SolveRequest: api.SolveRequest{Spec: testSpec("sim")},
		Mode:         "overlapped",
		Frames:       4,
		Interval:     1,
	}
	resp, body := post(t, srv.URL+"/v1/simulate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr api.SimulateResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Frames != 4 || sr.Makespan <= 0 || sr.Throughput <= 0 {
		t.Fatalf("simulate response %+v", sr)
	}
	if sr.Delay <= 0 {
		t.Fatalf("missing analytic delay: %+v", sr)
	}

	// Relying on the default mode still reports the canonical name.
	_, body = post(t, srv.URL+"/v1/simulate",
		api.SimulateRequest{SolveRequest: api.SolveRequest{Spec: testSpec("sim-default")}})
	var def api.SimulateResponse
	if err := json.Unmarshal(body, &def); err != nil {
		t.Fatal(err)
	}
	if def.Mode != "paper-barrier" {
		t.Fatalf("default mode echoed as %q, want paper-barrier", def.Mode)
	}

	req.Mode = "warp"
	if resp, _ := post(t, srv.URL+"/v1/simulate", req); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown mode: status %d", resp.StatusCode)
	}
}

func TestAlgorithmsHealthzVars(t *testing.T) {
	srv, _ := newTestServer(t, Config{})

	resp, err := http.Get(srv.URL + "/v1/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	var ar api.AlgorithmsResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(ar.Algorithms) == 0 {
		t.Fatal("no algorithms listed")
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(buf.String()) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, buf.String())
	}

	// Warm the cache so the vars show non-zero counters, then check the
	// document is valid JSON carrying both expvar and crserve sections.
	post(t, srv.URL+"/v1/solve", api.SolveRequest{Spec: testSpec("v")})
	resp, err = http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	resp.Body.Close()
	if _, ok := vars["memstats"]; !ok {
		t.Fatal("expvar memstats missing")
	}
	var own struct {
		Cache    repro.CacheStats `json:"cache"`
		Requests map[string]int64 `json:"requests"`
	}
	if err := json.Unmarshal(vars["crserve"], &own); err != nil {
		t.Fatalf("crserve section: %v", err)
	}
	if own.Cache.Misses < 1 || own.Requests["solve"] < 1 {
		t.Fatalf("counters not wired: %+v", own)
	}
}

func TestConcurrencyLimiter(t *testing.T) {
	// A solver seam is not reachable from here, so hold the only slot
	// with a request parked on the in-flight gate: run against a Service
	// with singleflight and a slow first solve. Simpler and fully
	// deterministic: MaxInflight=1 plus a handler-level probe — issue a
	// request from inside another request's window using a pre-acquired
	// slot is racy; instead verify the limiter's mechanics directly.
	cfg := Config{Service: repro.NewService(nil, 8), MaxInflight: 1}
	s := &server{cfg: cfg, slots: make(chan struct{}, cfg.MaxInflight)}

	blocked := make(chan struct{})
	release := make(chan struct{})
	slow := s.limited(func(w http.ResponseWriter, r *http.Request) {
		close(blocked)
		<-release
		w.WriteHeader(http.StatusOK)
	})

	go func() {
		rec := httptest.NewRecorder()
		slow(rec, httptest.NewRequest("POST", "/v1/solve", nil))
	}()
	<-blocked // the single slot is now held

	rec := httptest.NewRecorder()
	s.limited(func(http.ResponseWriter, *http.Request) {
		t.Error("second request ran despite a full limiter")
	})(rec, httptest.NewRequest("POST", "/v1/solve", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	var e api.Error
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Code != api.CodeOverloaded {
		t.Fatalf("body %s", rec.Body.String())
	}
	close(release)

	// Once the slot frees, requests flow again.
	deadline := time.Now().Add(2 * time.Second)
	for {
		rec := httptest.NewRecorder()
		ran := false
		s.limited(func(http.ResponseWriter, *http.Request) { ran = true })(
			rec, httptest.NewRequest("POST", "/v1/solve", nil))
		if ran {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("limiter never released its slot")
		}
		time.Sleep(time.Millisecond)
	}
	if s.rejected.Load() < 1 {
		t.Fatalf("rejected counter %d, want >= 1", s.rejected.Load())
	}
}

func TestBodySizeLimit(t *testing.T) {
	srv, _ := newTestServer(t, Config{MaxBodyBytes: 256})
	resp, body := post(t, srv.URL+"/v1/solve", api.SolveRequest{Spec: testSpec("too-big-for-256-bytes")})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body: status %d: %s", resp.StatusCode, body)
	}
	var e api.Error
	if err := json.Unmarshal(body, &e); err != nil || e.Code != api.CodeInvalidRequest {
		t.Fatalf("oversized body error: %s", body)
	}
	// Within the limit everything still works.
	big, _ := newTestServer(t, Config{MaxBodyBytes: 1 << 20})
	if resp, body := post(t, big.URL+"/v1/solve", api.SolveRequest{Spec: testSpec("fits")}); resp.StatusCode != http.StatusOK {
		t.Fatalf("in-limit body: status %d: %s", resp.StatusCode, body)
	}
}

func TestRequestTimeoutCeiling(t *testing.T) {
	// A 1ns server ceiling cancels every solve: the response must be the
	// structured canceled error with HTTP 504.
	srv, _ := newTestServer(t, Config{Service: repro.NewService(nil, 0), RequestTimeout: time.Nanosecond})
	resp, body := post(t, srv.URL+"/v1/solve", api.SolveRequest{Spec: testSpec("t")})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var e api.Error
	if err := json.Unmarshal(body, &e); err != nil || e.Code != api.CodeCanceled {
		t.Fatalf("body %s", body)
	}
	if e.Details["cause"] != "deadline_exceeded" {
		t.Fatalf("details %v", e.Details)
	}
}

func TestBatchItemCount(t *testing.T) {
	// Sanity: a large batch of distinct instances completes and stays in
	// input order (names embedded in fingerprint-distinct profiles).
	srv, _ := newTestServer(t, Config{BatchParallelism: 4})
	var req api.BatchRequest
	const n = 12
	for i := 0; i < n; i++ {
		s := testSpec(fmt.Sprintf("n%d", i))
		s.CRUs[0].HostTime = 3 + float64(i)
		req.Items = append(req.Items, api.SolveRequest{Spec: s})
	}
	_, body := post(t, srv.URL+"/v1/batch", req)
	var br api.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Items) != n {
		t.Fatalf("%d items, want %d", len(br.Items), n)
	}
	seen := map[string]bool{}
	for i, item := range br.Items {
		if item.Error != nil {
			t.Fatalf("item %d: %+v", i, item.Error)
		}
		if seen[item.Response.Fingerprint] {
			t.Fatalf("item %d repeated a fingerprint", i)
		}
		seen[item.Response.Fingerprint] = true
	}
}

func TestVarsLatencyAndInflight(t *testing.T) {
	srv, _ := newTestServer(t, Config{})

	// Drive a few labelled endpoints, including a failing solve — errors
	// must be measured too.
	for i := 0; i < 3; i++ {
		post(t, srv.URL+"/v1/solve", api.SolveRequest{Spec: testSpec("lat")})
	}
	post(t, srv.URL+"/v1/solve", api.SolveRequest{}) // invalid: still timed
	post(t, srv.URL+"/v1/batch", api.BatchRequest{Items: []api.SolveRequest{{Spec: testSpec("lat-b")}}})

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		Crserve struct {
			Latency  map[string]map[string]float64 `json:"latency"`
			Inflight int64                         `json:"inflight"`
		} `json:"crserve"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	solve := vars.Crserve.Latency["solve"]
	if solve == nil {
		t.Fatalf("no solve latency block: %+v", vars.Crserve.Latency)
	}
	if got := solve["count"]; got != 4 {
		t.Errorf("solve count = %v, want 4 (3 ok + 1 invalid)", got)
	}
	if solve["p95_us"] <= 0 || solve["max_us"] < solve["p50_us"] {
		t.Errorf("implausible solve quantiles: %+v", solve)
	}
	if batch := vars.Crserve.Latency["batch"]; batch == nil || batch["count"] != 1 {
		t.Errorf("batch latency block: %+v", batch)
	}
	if _, ok := vars.Crserve.Latency["session_open"]; ok {
		t.Error("unused endpoint must be omitted from the latency block")
	}
	// The scrape itself holds no labelled endpoint, so nothing is in flight.
	if vars.Crserve.Inflight != 0 {
		t.Errorf("inflight = %d, want 0", vars.Crserve.Inflight)
	}
}
