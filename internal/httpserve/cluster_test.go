package httpserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/api"
	"repro/internal/cluster"
	"repro/internal/workload"
)

// testFleetOptions is the fast-failover tuning every fleet test uses:
// breakers open on the first failure (a killed node is skipped at once),
// probes are manual unless a test starts them.
func testFleetOptions() FleetOptions {
	return FleetOptions{
		Cluster: cluster.Config{
			VirtualNodes:     64,
			BreakerThreshold: 1,
			BreakerCooldown:  time.Hour,
			HedgeDelay:       20 * time.Millisecond,
			ProbeInterval:    25 * time.Millisecond,
		},
	}
}

func startTestFleet(t *testing.T, n int, opts FleetOptions) *Fleet {
	t.Helper()
	f, err := StartFleet(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

// randomSpec returns a distinct solvable instance per seed.
func randomSpec(seed int64, crus int) *repro.Spec {
	rng := rand.New(rand.NewSource(seed))
	t := workload.Random(rng, workload.DefaultRandomSpec(crus, 3))
	return repro.ToSpec(t, fmt.Sprintf("t%d", seed))
}

func solveVia(t *testing.T, url string, req *api.SolveRequest) (*api.SolveResponse, *http.Response) {
	t.Helper()
	resp, body := post(t, url+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve via %s: %d %s", url, resp.StatusCode, body)
	}
	var out api.SolveResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding solve response: %v", err)
	}
	return &out, resp
}

// ownerIndex returns which fleet node owns the spec's fingerprint.
func ownerIndex(t *testing.T, f *Fleet, spec *repro.Spec) int {
	t.Helper()
	tree, err := repro.FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	owner := f.Nodes[0].Cluster.Owner(repro.Fingerprint(tree))
	for i, n := range f.Nodes {
		if n.URL == owner {
			return i
		}
	}
	t.Fatalf("owner %q not in fleet", owner)
	return -1
}

// specOwnedBy fabricates an instance whose ring owner is fleet node want.
func specOwnedBy(t *testing.T, f *Fleet, want int, crus int) *repro.Spec {
	t.Helper()
	for seed := int64(1); seed < 5000; seed++ {
		spec := randomSpec(seed, crus)
		if ownerIndex(t, f, spec) == want {
			return spec
		}
	}
	t.Fatalf("no spec owned by node %d", want)
	return nil
}

// TestClusterRoutingAffinity is the acceptance criterion: repeat solves
// of one fingerprint land on its owner whichever node the client hits,
// so ≥90% of repeats are cache hits somewhere in the fleet (here: all of
// them), and each instance cold-solves exactly once fleet-wide.
func TestClusterRoutingAffinity(t *testing.T) {
	f := startTestFleet(t, 3, testFleetOptions())

	const distinct, repeats = 24, 10
	specs := make([]*repro.Spec, distinct)
	for i := range specs {
		specs[i] = randomSpec(int64(100+i), 12)
	}
	for rep := 0; rep < repeats; rep++ {
		for i, spec := range specs {
			out, resp := solveVia(t, f.Nodes[(rep+i)%3].URL, &api.SolveRequest{Spec: spec})
			if out.Delay <= 0 {
				t.Fatalf("spec %d: non-positive delay %v", i, out.Delay)
			}
			owner := f.Nodes[ownerIndex(t, f, spec)].URL
			if got := resp.Header.Get(api.ServedByHeader); got != owner {
				t.Fatalf("spec %d served by %q, owner is %q", i, got, owner)
			}
		}
	}

	var hits, misses int64
	for _, n := range f.Nodes {
		st := n.Service.Stats()
		hits += st.Hits
		misses += st.Misses
	}
	if misses != distinct {
		t.Errorf("%d cold solves for %d distinct instances — affinity leak", misses, distinct)
	}
	total := int64(distinct * repeats)
	repeatsServed := total - distinct
	if hits < (repeatsServed*9)/10 {
		t.Fatalf("fleet hit rate %d/%d below 90%% of repeats", hits, repeatsServed)
	}
}

// TestClusterEquivalence is the property check: for every registered
// algorithm, solving through the fleet (via a non-owner node) returns
// bit-identical results to a plain single-node Solver.
func TestClusterEquivalence(t *testing.T) {
	f := startTestFleet(t, 3, testFleetOptions())
	solver := repro.NewSolver()
	ctx := context.Background()

	for i, alg := range repro.Algorithms() {
		spec := randomSpec(int64(7000+i), 10)
		tree, err := repro.FromSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		want, err := solver.Solve(ctx, tree, repro.WithAlgorithm(alg), repro.WithSeed(7))
		if err != nil {
			t.Fatalf("%s: reference solve: %v", alg, err)
		}
		wantWire := api.NewSolveResponse(tree, want, repro.CacheMiss)

		req := &api.SolveRequest{Spec: spec, Algorithm: string(alg), Seed: 7}
		for n := 0; n < 3; n++ {
			got, _ := solveVia(t, f.Nodes[n].URL, req)
			if got.Delay != wantWire.Delay || got.Exact != wantWire.Exact || got.Algorithm != wantWire.Algorithm {
				t.Fatalf("%s via node %d: got delay=%v exact=%v, want delay=%v exact=%v",
					alg, n, got.Delay, got.Exact, wantWire.Delay, wantWire.Exact)
			}
			if !reflect.DeepEqual(got.Assignment, wantWire.Assignment) {
				t.Fatalf("%s via node %d: assignment drift:\n got %v\nwant %v", alg, n, got.Assignment, wantWire.Assignment)
			}
		}
	}
}

func TestClusterEmptyBatch(t *testing.T) {
	f := startTestFleet(t, 3, testFleetOptions())
	resp, body := post(t, f.Nodes[0].URL+"/v1/batch", &api.BatchRequest{Items: []api.SolveRequest{}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty batch: %d %s", resp.StatusCode, body)
	}
	var br api.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Items) != 0 {
		t.Fatalf("empty batch returned %d items", len(br.Items))
	}
}

// TestClusterBatchScatterGather: a mixed batch splits by owner, merges
// in input order, and isolates per-item errors exactly as a single node
// would.
func TestClusterBatchScatterGather(t *testing.T) {
	f := startTestFleet(t, 3, testFleetOptions())
	items := []api.SolveRequest{
		{Spec: specOwnedBy(t, f, 0, 12)},
		{Spec: specOwnedBy(t, f, 1, 12)},
		{Spec: nil}, // invalid: missing spec
		{Spec: specOwnedBy(t, f, 2, 12)},
		{Spec: specOwnedBy(t, f, 1, 14), Algorithm: "no-such-algorithm"},
	}
	resp, body := post(t, f.Nodes[0].URL+"/v1/batch", &api.BatchRequest{Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	var br api.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Items) != len(items) {
		t.Fatalf("%d items back for %d sent", len(br.Items), len(items))
	}
	for _, i := range []int{0, 1, 3} {
		if br.Items[i].Response == nil {
			t.Fatalf("item %d: no response: %+v", i, br.Items[i].Error)
		}
	}
	if br.Items[2].Error == nil || br.Items[2].Error.Code != api.CodeInvalidRequest {
		t.Fatalf("item 2: want invalid_request, got %+v", br.Items[2])
	}
	if br.Items[4].Error == nil || br.Items[4].Error.Code != api.CodeUnknownAlgorithm {
		t.Fatalf("item 4: want unknown_algorithm, got %+v", br.Items[4])
	}
	// The scattered result must equal the same batch served by one node.
	single, svc := newTestServer(t, Config{})
	_ = svc
	_, sbody := post(t, single.URL+"/v1/batch", &api.BatchRequest{Items: items})
	var sr api.BatchResponse
	if err := json.Unmarshal(sbody, &sr); err != nil {
		t.Fatal(err)
	}
	for i := range sr.Items {
		a, b := br.Items[i].Response, sr.Items[i].Response
		if (a == nil) != (b == nil) {
			t.Fatalf("item %d: presence mismatch", i)
		}
		if a != nil && (a.Delay != b.Delay || !reflect.DeepEqual(a.Assignment, b.Assignment)) {
			t.Fatalf("item %d: clustered batch diverges from single-node: %v vs %v", i, a.Delay, b.Delay)
		}
	}
}

// TestClusterBatchDedup: duplicates of one instance cross the wire and
// solve once per owner; every duplicate index still gets a result.
func TestClusterBatchDedup(t *testing.T) {
	f := startTestFleet(t, 3, testFleetOptions())
	spec := specOwnedBy(t, f, 1, 12)
	items := make([]api.SolveRequest, 6)
	for i := range items {
		items[i] = api.SolveRequest{Spec: spec}
	}
	resp, body := post(t, f.Nodes[0].URL+"/v1/batch", &api.BatchRequest{Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	var br api.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Items) != 6 {
		t.Fatalf("%d items back", len(br.Items))
	}
	for i, it := range br.Items {
		if it.Response == nil {
			t.Fatalf("item %d: %+v", i, it.Error)
		}
		if it.Response.Delay != br.Items[0].Response.Delay {
			t.Fatalf("item %d: duplicate delays diverge", i)
		}
	}
	st := f.Nodes[1].Service.Stats()
	if st.Misses != 1 || st.Hits != 0 || st.Shared != 0 {
		t.Fatalf("owner solved the duplicates %d/%d/%d times (miss/hit/shared), want exactly one miss", st.Misses, st.Hits, st.Shared)
	}
	if st0 := f.Nodes[0].Service.Stats(); st0.Misses != 0 {
		t.Fatalf("gateway node solved %d items itself", st0.Misses)
	}
}

// renamedSpec deep-copies spec with every node and satellite name
// prefixed: a structurally identical instance (same fingerprint, same
// ring owner) under different names.
func renamedSpec(spec *repro.Spec, prefix string) *repro.Spec {
	out := &repro.Spec{
		Name:       prefix + spec.Name,
		Satellites: make([]string, len(spec.Satellites)),
		CRUs:       append([]repro.SpecCRU(nil), spec.CRUs...),
		Sensors:    append([]repro.SpecSensor(nil), spec.Sensors...),
	}
	ren := func(s string) string {
		if s == "" {
			return ""
		}
		return prefix + s
	}
	for i, s := range spec.Satellites {
		out.Satellites[i] = ren(s)
	}
	for i := range out.CRUs {
		out.CRUs[i].Name = ren(out.CRUs[i].Name)
		out.CRUs[i].Parent = ren(out.CRUs[i].Parent)
	}
	for i := range out.Sensors {
		out.Sensors[i].Name = ren(out.Sensors[i].Name)
		out.Sensors[i].Parent = ren(out.Sensors[i].Parent)
		out.Sensors[i].Satellite = ren(out.Sensors[i].Satellite)
	}
	return out
}

// TestClusterBatchNameVariants: two batch items that are one instance
// under different names share a fingerprint (and owner) but must NOT
// share a wire response — each answer carries its own item's names.
func TestClusterBatchNameVariants(t *testing.T) {
	f := startTestFleet(t, 3, testFleetOptions())
	specA := specOwnedBy(t, f, 1, 12)
	specB := renamedSpec(specA, "v2-")
	if ownerIndex(t, f, specA) != ownerIndex(t, f, specB) {
		t.Fatal("renaming changed the fingerprint — canonicalisation broke")
	}
	resp, body := post(t, f.Nodes[0].URL+"/v1/batch",
		&api.BatchRequest{Items: []api.SolveRequest{{Spec: specA}, {Spec: specB}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	var br api.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	a, b := br.Items[0].Response, br.Items[1].Response
	if a == nil || b == nil {
		t.Fatalf("missing responses: %s", body)
	}
	if a.Delay != b.Delay {
		t.Fatalf("structurally identical items diverged: %v vs %v", a.Delay, b.Delay)
	}
	for name := range a.Assignment {
		if strings.HasPrefix(name, "v2-") {
			t.Fatalf("item 0's assignment carries item 1's names: %v", a.Assignment)
		}
	}
	for name := range b.Assignment {
		if !strings.HasPrefix(name, "v2-") {
			t.Fatalf("item 1's assignment carries item 0's names: %v", b.Assignment)
		}
	}
}

// TestClusterAllOwnersDown: with every peer dead the surviving node
// still answers everything, locally, with correct results.
func TestClusterAllOwnersDown(t *testing.T) {
	f := startTestFleet(t, 3, testFleetOptions())
	specs := []*repro.Spec{
		specOwnedBy(t, f, 1, 12),
		specOwnedBy(t, f, 2, 12),
	}
	// Reference answers while the fleet is healthy.
	want := make([]float64, len(specs))
	for i, spec := range specs {
		out, _ := solveVia(t, f.Nodes[0].URL, &api.SolveRequest{Spec: spec})
		want[i] = out.Delay
	}
	f.Nodes[1].Kill()
	f.Nodes[2].Kill()
	for rep := 0; rep < 4; rep++ {
		for i, spec := range specs {
			out, resp := solveVia(t, f.Nodes[0].URL, &api.SolveRequest{Spec: spec})
			if out.Delay != want[i] {
				t.Fatalf("rep %d spec %d: delay %v after failover, want %v", rep, i, out.Delay, want[i])
			}
			if rep > 0 {
				// After the first failed forward the breaker is open and
				// the survivor serves straight from its own stack.
				if got := resp.Header.Get(api.ServedByHeader); got != f.Nodes[0].URL {
					t.Fatalf("rep %d: served by %q, want local %q", rep, got, f.Nodes[0].URL)
				}
			}
		}
	}
	st := f.Nodes[0].Cluster.Stats()
	if st.LocalFallbacks == 0 {
		t.Fatal("no local fallbacks counted with every peer dead")
	}
	// The batch path degrades the same way.
	items := []api.SolveRequest{{Spec: specs[0]}, {Spec: specs[1]}}
	resp, body := post(t, f.Nodes[0].URL+"/v1/batch", &api.BatchRequest{Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with dead owners: %d %s", resp.StatusCode, body)
	}
	var br api.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	for i, it := range br.Items {
		if it.Response == nil || it.Response.Delay != want[i] {
			t.Fatalf("batch item %d after failover: %+v", i, it)
		}
	}
}

// TestClusterMidFlightNodeDeath: a node dies while a request stream is
// running; capacity degrades (forwards become local fallbacks) but every
// response stays correct.
func TestClusterMidFlightNodeDeath(t *testing.T) {
	f := startTestFleet(t, 3, testFleetOptions())
	spec := specOwnedBy(t, f, 1, 12)
	out, _ := solveVia(t, f.Nodes[0].URL, &api.SolveRequest{Spec: spec})
	want := out.Delay
	for i := 0; i < 20; i++ {
		if i == 7 {
			f.Nodes[1].Kill()
		}
		got, _ := solveVia(t, f.Nodes[0].URL, &api.SolveRequest{Spec: spec})
		if got.Delay != want {
			t.Fatalf("request %d: delay %v, want %v", i, got.Delay, want)
		}
	}
}

// TestClusterSessionPinning: sessions open on the initial tree's owner,
// carry the owner's tag in their ID, and are reachable through any node
// (GET redirects, mutating calls proxy).
func TestClusterSessionPinning(t *testing.T) {
	f := startTestFleet(t, 3, testFleetOptions())
	spec := specOwnedBy(t, f, 1, 12)

	resp, body := post(t, f.Nodes[0].URL+"/v1/session", &api.OpenSessionRequest{SolveRequest: api.SolveRequest{Spec: spec}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open: %d %s", resp.StatusCode, body)
	}
	var opened api.SessionResponse
	if err := json.Unmarshal(body, &opened); err != nil {
		t.Fatal(err)
	}
	id := opened.Session.SessionID
	ownerTag := f.Nodes[1].Cluster.SelfTag()
	if !strings.HasPrefix(id, ownerTag+"-") {
		t.Fatalf("session id %q not pinned to owner tag %q", id, ownerTag)
	}

	// GET via a non-owner answers 307 to the owner…
	noRedirect := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse }}
	get, err := noRedirect.Get(f.Nodes[2].URL + "/v1/session/" + id)
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("GET via non-owner: %d", get.StatusCode)
	}
	if loc := get.Header.Get("Location"); !strings.HasPrefix(loc, f.Nodes[1].URL) {
		t.Fatalf("redirect to %q, owner is %q", loc, f.Nodes[1].URL)
	}
	// …and a default client (which follows 307) lands on the session.
	follow, err := http.Get(f.Nodes[2].URL + "/v1/session/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var state api.SessionResponse
	if err := json.NewDecoder(follow.Body).Decode(&state); err != nil {
		t.Fatal(err)
	}
	follow.Body.Close()
	if state.Session.SessionID != id {
		t.Fatalf("followed redirect got session %q", state.Session.SessionID)
	}

	// Mutate through a non-owner proxies to the owner and resolves.
	ht := 5.0
	mut := &api.MutateRequest{
		Mutations: []api.Mutation{{Op: api.OpWeightUpdate, Node: spec.CRUs[0].Name, HostTime: &ht}},
		Resolve:   true,
	}
	resp, body = post(t, f.Nodes[2].URL+"/v1/session/"+id+"/mutate", mut)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied mutate: %d %s", resp.StatusCode, body)
	}
	var mutated api.SessionResponse
	if err := json.Unmarshal(body, &mutated); err != nil {
		t.Fatal(err)
	}
	if mutated.Session.Revision != 1 || mutated.Response == nil {
		t.Fatalf("proxied mutate state: %+v", mutated.Session)
	}
	if got := resp.Header.Get(api.ServedByHeader); got != f.Nodes[1].URL {
		t.Fatalf("proxied mutate served by %q", got)
	}
	if st := f.Nodes[2].Cluster.Stats(); st.ProxiedSessions == 0 || st.Redirects == 0 {
		t.Fatalf("session routing counters not wired: %+v", st)
	}

	// Owner gone: pinned calls fail with unavailable, not a wrong answer.
	f.Nodes[1].Kill()
	resp, body = post(t, f.Nodes[2].URL+"/v1/session/"+id+"/resolve", struct{}{})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("resolve with dead owner: %d %s", resp.StatusCode, body)
	}
	var apiErr api.Error
	if err := json.Unmarshal(body, &apiErr); err != nil || apiErr.Code != api.CodeUnavailable {
		t.Fatalf("error body %s", body)
	}
}

// TestClusterHopGuard: a request already marked as forwarded is served
// locally even by a node that does not own it.
func TestClusterHopGuard(t *testing.T) {
	f := startTestFleet(t, 3, testFleetOptions())
	spec := specOwnedBy(t, f, 1, 12)
	data, err := json.Marshal(&api.SolveRequest{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, f.Nodes[0].URL+"/v1/solve", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.ForwardedHeader, "http://elsewhere")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hop-guarded solve: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(api.ServedByHeader); got != f.Nodes[0].URL {
		t.Fatalf("hop-guarded request served by %q, want the receiving node", got)
	}
	if st := f.Nodes[0].Cluster.Stats(); st.Forwards != 0 {
		t.Fatalf("hop-guarded request was forwarded again: %+v", st)
	}
}

// TestClusterDraining: a draining node flips /healthz before anything
// closes, peers' probes notice, and new work stops routing to it while
// it still answers what arrives.
func TestClusterDraining(t *testing.T) {
	opts := testFleetOptions()
	opts.StartProbes = true
	f := startTestFleet(t, 3, opts)
	spec := specOwnedBy(t, f, 1, 12)
	solveVia(t, f.Nodes[0].URL, &api.SolveRequest{Spec: spec}) // warm: forwarded to node 1

	f.Nodes[1].Handler.Drain()
	hz, err := http.Get(f.Nodes[1].URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(hz.Body)
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable || !strings.Contains(buf.String(), "draining") {
		t.Fatalf("draining healthz: %d %q", hz.StatusCode, buf.String())
	}

	// Wait for node 0's probes to see the state change: the draining
	// owner must drop out of the plan (the next ring replica — or nobody
	// — takes over).
	fp := repro.Fingerprint(mustTree(t, spec))
	deadline := time.Now().Add(2 * time.Second)
	for {
		plan := f.Nodes[0].Cluster.Plan(fp)
		if len(plan) == 0 || plan[0] != f.Nodes[1].URL {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("node 0 kept planning routes to the draining owner")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// New work for the draining node's keys now routes elsewhere…
	out, resp := solveVia(t, f.Nodes[0].URL, &api.SolveRequest{Spec: spec})
	if out.Delay <= 0 {
		t.Fatal("bad delay after drain")
	}
	if got := resp.Header.Get(api.ServedByHeader); got == f.Nodes[1].URL {
		t.Fatalf("post-drain solve still served by the draining node %q", got)
	}
	// …while the draining node itself still answers (it has not closed).
	direct, _ := solveVia(t, f.Nodes[1].URL, &api.SolveRequest{Spec: spec})
	if direct.Delay != out.Delay {
		t.Fatalf("draining node answered %v, fleet answered %v", direct.Delay, out.Delay)
	}
}

func mustTree(t *testing.T, spec *repro.Spec) *repro.Tree {
	t.Helper()
	tree, err := repro.FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestClusterIntrospection: /v1/cluster reports the fleet on a clustered
// node and enabled=false on a plain one.
func TestClusterIntrospection(t *testing.T) {
	f := startTestFleet(t, 3, testFleetOptions())
	resp, err := http.Get(f.Nodes[0].URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var doc api.ClusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !doc.Enabled || doc.Self != f.Nodes[0].URL || len(doc.Nodes) != 3 {
		t.Fatalf("cluster doc: %+v", doc)
	}
	if !doc.Nodes[0].Self || doc.Nodes[0].State != "ready" || doc.Nodes[0].Tag == "" {
		t.Fatalf("self node entry: %+v", doc.Nodes[0])
	}

	single, _ := newTestServer(t, Config{})
	resp, err = http.Get(single.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var plain api.ClusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&plain); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if plain.Enabled || plain.APIVersion != api.Version {
		t.Fatalf("single-node cluster doc: %+v", plain)
	}
}

// TestClusterVars: /debug/vars gains the cluster section.
func TestClusterVars(t *testing.T) {
	f := startTestFleet(t, 3, testFleetOptions())
	solveVia(t, f.Nodes[0].URL, &api.SolveRequest{Spec: specOwnedBy(t, f, 1, 12)})
	resp, err := http.Get(f.Nodes[0].URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var own struct {
		Cluster struct {
			Self  string           `json:"self"`
			Stats map[string]int64 `json:"stats"`
		} `json:"cluster"`
	}
	if err := json.Unmarshal(vars["crserve"], &own); err != nil {
		t.Fatal(err)
	}
	if own.Cluster.Self != f.Nodes[0].URL || own.Cluster.Stats["forwards"] != 1 {
		t.Fatalf("cluster vars: %+v", own.Cluster)
	}
}
