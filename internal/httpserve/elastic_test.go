package httpserve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/api"
)

// waitForEpoch polls every fleet node until all report at least epoch,
// failing the test after the deadline — view changes propagate through
// synchronous pushes plus an async broadcast, so tests must not assume
// instant convergence.
func waitForEpoch(t *testing.T, f *Fleet, epoch uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		all := true
		for _, n := range f.Nodes {
			if n.Cluster.Epoch() < epoch {
				all = false
				break
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			for i, n := range f.Nodes {
				t.Logf("node %d: epoch %d", i, n.Cluster.Epoch())
			}
			t.Fatalf("fleet never converged on epoch %d", epoch)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// migratePush posts a raw migration payload with an explicit epoch
// header, returning the HTTP status.
func migratePush(t *testing.T, url, path string, epoch uint64, payload any) int {
	t.Helper()
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.EpochHeader, strconv.FormatUint(epoch, 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode
}

// TestElasticJoinMidLoadWarmReuse is the tentpole acceptance test: a
// fourth node joins a warmed, actively loaded 3-node fleet; the ranges
// it takes over arrive warm (≥90% of moved-range re-solves answer from
// migrated state), the load sees zero errors throughout, a stale-epoch
// push is rejected and counted, and killing the joined node afterwards
// degrades capacity without surfacing a single client error.
func TestElasticJoinMidLoadWarmReuse(t *testing.T) {
	fleet := startTestFleet(t, 3, testFleetOptions())

	const instances = 40
	specs := make([]*repro.Spec, instances)
	for i := range specs {
		specs[i] = randomSpec(int64(1000+i), 10)
	}
	// Warm every instance's owner through node 0.
	for _, spec := range specs {
		solveVia(t, fleet.Nodes[0].URL, &api.SolveRequest{Spec: spec})
	}

	// Continuous client load across the original nodes while the fleet
	// grows: any non-200 (or transport error) is a failure of the
	// "serving never stops" contract.
	var (
		loadErrs atomic.Int64
		loadOps  atomic.Int64
		stop     = make(chan struct{})
		wg       sync.WaitGroup
	)
	urls := fleet.URLs()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body, _ := json.Marshal(&api.SolveRequest{Spec: specs[i%len(specs)]})
				resp, err := http.Post(urls[i%len(urls)]+"/v1/solve", "application/json", bytes.NewReader(body))
				if err != nil {
					loadErrs.Add(1)
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					loadErrs.Add(1)
				}
				loadOps.Add(1)
			}
		}(w)
	}

	joined, err := fleet.Spawn()
	if err != nil {
		t.Fatalf("mid-load join: %v", err)
	}
	waitForEpoch(t, fleet, 2)
	time.Sleep(50 * time.Millisecond) // a little traffic against the new ring
	close(stop)
	wg.Wait()

	if n := loadErrs.Load(); n != 0 {
		t.Errorf("%d client errors during the join (of %d requests)", n, loadOps.Load())
	}

	// The new node's ranges: instances the post-join ring assigns to it.
	var moved []*repro.Spec
	for _, spec := range specs {
		tree, err := repro.FromSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		if fleet.Nodes[0].Cluster.Owner(repro.Fingerprint(tree)) == joined.URL {
			moved = append(moved, spec)
		}
	}
	if len(moved) == 0 {
		t.Fatal("no instance moved to the joined node; cannot assert warm handoff")
	}

	// Moved-range re-solves through node 0 now route to the joined node
	// and must answer from the migrated warm state, not cold solves.
	missesBefore := joined.Service.Stats().Misses
	warm := 0
	for _, spec := range moved {
		resp, _ := solveVia(t, fleet.Nodes[0].URL, &api.SolveRequest{Spec: spec})
		if resp.Cached {
			warm++
		}
	}
	if frac := float64(warm) / float64(len(moved)); frac < 0.9 {
		t.Errorf("moved-range warm re-solves: %d/%d (%.0f%%), want >= 90%%", warm, len(moved), 100*frac)
	}
	if d := joined.Service.Stats().Misses - missesBefore; d > int64(len(moved))/10 {
		t.Errorf("joined node cold-solved %d of %d moved instances", d, len(moved))
	}

	// Elastic counters: someone migrated and pushed, the joiner adopted.
	var pushed, migrations int64
	for _, n := range fleet.Nodes[:3] {
		c := n.Elastic.Counters()
		pushed += c.EntriesPushed
		migrations += c.Migrations
	}
	if migrations == 0 || pushed == 0 {
		t.Errorf("incumbents report %d migrations, %d entries pushed; want both > 0", migrations, pushed)
	}
	if got := joined.Elastic.Counters().EntriesAdopted; got == 0 {
		t.Error("joined node adopted no entries")
	}

	// A push stamped with the superseded epoch is rejected and counted.
	staleBefore := joined.Elastic.Counters().StaleEpochRejects
	status := migratePush(t, joined.URL, "/v1/migrate/cache", 1, &api.MigrateResultsRequest{})
	if status != http.StatusConflict {
		t.Errorf("stale-epoch push: status %d, want %d", status, http.StatusConflict)
	}
	if got := joined.Elastic.Counters().StaleEpochRejects; got != staleBefore+1 {
		t.Errorf("StaleEpochRejects = %d, want %d", got, staleBefore+1)
	}
	// The current epoch passes the guard (empty payload: nothing adopted).
	if status := migratePush(t, joined.URL, "/v1/migrate/cache", 2, &api.MigrateResultsRequest{}); status != http.StatusOK {
		t.Errorf("current-epoch push: status %d, want 200", status)
	}

	// Kill the joined node: its ranges lose their warm state, the fleet
	// loses capacity — but every request keeps answering (forwards fail
	// onto the breaker, owners fall back to solving locally).
	joined.Kill()
	for _, spec := range specs {
		solveVia(t, fleet.Nodes[0].URL, &api.SolveRequest{Spec: spec})
	}
}

// TestElasticSessionMigrationParity walks a session across a membership
// change: opened (and warmed) on a node that then leaves the fleet, it
// keeps resolving under the same ID with its revision history intact —
// through the new owner directly, and through the departed node's
// relocation tombstone — and produces exactly the answers the original
// owner gave.
func TestElasticSessionMigrationParity(t *testing.T) {
	fleet := startTestFleet(t, 2, testFleetOptions())

	spec := specOwnedBy(t, fleet, 1, 10)
	resp, body := post(t, fleet.Nodes[0].URL+"/v1/session", api.OpenSessionRequest{
		SolveRequest: api.SolveRequest{Spec: spec},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open: %d %s", resp.StatusCode, body)
	}
	var opened api.SessionResponse
	if err := json.Unmarshal(body, &opened); err != nil {
		t.Fatal(err)
	}
	id := opened.Session.SessionID

	// Mutate + resolve on the owner: revision 1, a warm outcome to carry.
	drift := spec.CRUs[len(spec.CRUs)-1].HostTime * 1.5
	node := spec.CRUs[len(spec.CRUs)-1].Name
	resp, body = post(t, fleet.Nodes[0].URL+"/v1/session/"+id+"/mutate", api.MutateRequest{
		Mutations: []api.Mutation{{Op: api.OpWeightUpdate, Node: node, HostTime: &drift}},
		Resolve:   true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: %d %s", resp.StatusCode, body)
	}
	var mutated api.SessionResponse
	if err := json.Unmarshal(body, &mutated); err != nil {
		t.Fatal(err)
	}
	if mutated.Session.Revision != 1 || mutated.Response == nil {
		t.Fatalf("mutate response: %+v", mutated)
	}
	want := mutated.Response.Delay
	wantFP := mutated.Session.Fingerprint

	// The owner leaves; its sessions are pushed to the survivors before
	// its routing flips.
	if err := fleet.Leave(1); err != nil {
		t.Fatalf("leave: %v", err)
	}
	waitForEpoch(t, fleet, 2)

	check := func(via string, label string) {
		t.Helper()
		resp, body := post(t, via+"/v1/session/"+id+"/resolve", struct{}{})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s resolve: %d %s", label, resp.StatusCode, body)
		}
		var got api.SessionResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.Session.Revision != 1 || got.Session.Fingerprint != wantFP {
			t.Errorf("%s: session state diverged after migration: %+v", label, got.Session)
		}
		if got.Response == nil || got.Response.Delay != want {
			t.Errorf("%s: delay = %+v, want %g", label, got.Response, want)
		}
	}
	check(fleet.Nodes[0].URL, "adopter")   // served locally (adopted)
	check(fleet.Nodes[1].URL, "tombstone") // draining old owner proxies

	// The migrated session still mutates: its lifecycle survived the move.
	revert := spec.CRUs[len(spec.CRUs)-1].HostTime
	resp, body = post(t, fleet.Nodes[0].URL+"/v1/session/"+id+"/mutate", api.MutateRequest{
		Mutations: []api.Mutation{{Op: api.OpWeightUpdate, Node: node, HostTime: &revert}},
		Resolve:   true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-migration mutate: %d %s", resp.StatusCode, body)
	}
	var after api.SessionResponse
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	if after.Session.Revision != 2 {
		t.Errorf("post-migration revision = %d, want 2", after.Session.Revision)
	}
	if after.Session.Fingerprint != opened.Session.Fingerprint {
		t.Errorf("reverting the drift should restore the original fingerprint")
	}

	if got := fleet.Nodes[0].Elastic.Counters(); got.EntriesAdopted == 0 {
		t.Error("adopter counters record no adopted entries")
	}
	if got := fleet.Nodes[1].Elastic.Counters(); got.Leaves == 0 {
		t.Error("leaver counters record no leave")
	}
}

// TestElasticClusterDocEpoch checks the introspection satellites: GET
// /v1/cluster reports the view epoch and per-node state ages, and
// /debug/vars exposes the crserve.elastic.* counter block.
func TestElasticClusterDocEpoch(t *testing.T) {
	fleet := startTestFleet(t, 2, testFleetOptions())
	if _, err := fleet.Spawn(); err != nil {
		t.Fatal(err)
	}
	waitForEpoch(t, fleet, 2)

	res, err := http.Get(fleet.Nodes[0].URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var doc api.ClusterResponse
	if err := json.NewDecoder(res.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if doc.Epoch != 2 {
		t.Errorf("cluster doc epoch = %d, want 2", doc.Epoch)
	}
	if len(doc.Members) != 3 {
		t.Errorf("cluster doc members = %v, want 3", doc.Members)
	}
	for _, n := range doc.Nodes {
		if n.StateSinceMS < 0 {
			t.Errorf("node %s: state_since_ms = %d", n.ID, n.StateSinceMS)
		}
	}

	res, err = http.Get(fleet.Nodes[0].URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(res.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	crserve, ok := vars["crserve"]
	if !ok {
		t.Fatal("/debug/vars missing crserve block")
	}
	var own struct {
		Elastic *struct {
			Joins int64 `json:"joins"`
		} `json:"elastic"`
	}
	if err := json.Unmarshal(crserve, &own); err != nil {
		t.Fatal(err)
	}
	if own.Elastic == nil {
		t.Fatal("/debug/vars missing crserve.elastic block")
	}
	if own.Elastic.Joins == 0 {
		t.Errorf("crserve.elastic.joins = 0 after a join")
	}

	// healthz gossips the epoch for probe-driven convergence.
	res, err = http.Get(fleet.Nodes[0].URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if got := res.Header.Get(api.EpochHeader); got != "2" {
		t.Errorf("healthz %s = %q, want \"2\"", api.EpochHeader, got)
	}
}
