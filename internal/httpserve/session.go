package httpserve

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro"
	"repro/api"
)

// sessionEntry is one live session with its bookkeeping. lastUsed is
// guarded by the server's session lock; defaults are the solve
// parameters captured at open, immutable afterwards — they travel with
// the session when it migrates so the adopter re-opens it identically.
type sessionEntry struct {
	sess     *repro.Session
	defaults api.SolveRequest
	lastUsed time.Time
}

// handleSessionOpen creates a session from the request's spec; the other
// request parameters become the session's solve defaults.
//
//	POST /v1/session
func (s *server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	s.sessionCalls.Add(1)
	var req api.OpenSessionRequest
	raw, err := s.decode(w, r, &req)
	if err != nil {
		s.fail(w, err)
		return
	}
	tree, err := req.Tree()
	if err != nil {
		s.fail(w, err)
		return
	}
	// Route the open to the initial tree's ring owner so the session's
	// warm state lives next to the instance's result cache. No hedging:
	// a raced open could mint a second (orphan) session on the loser.
	if s.maybeForward(w, r, repro.Fingerprint(tree), raw, false) {
		return
	}
	sess, err := s.cfg.Service.OpenSession(tree, s.solveOpts(req.Options())...)
	if err != nil {
		s.fail(w, err)
		return
	}
	defaults := req.SolveRequest
	defaults.Spec = nil // the tree travels separately (and mutates)
	id, err := s.storeSession(sess, defaults)
	if err != nil {
		s.fail(w, err)
		return
	}
	s.stampSelf(w)
	writeJSON(w, http.StatusOK, &api.SessionResponse{
		APIVersion: api.Version,
		Session:    api.NewSessionState(id, sess),
	})
}

// handleSessionGet reports a session's current state.
//
//	GET /v1/session/{id}
func (s *server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	id, sess, err := s.lookupSession(r)
	if err != nil {
		s.sessionFail(w, r, err)
		return
	}
	s.stampSelf(w)
	writeJSON(w, http.StatusOK, &api.SessionResponse{
		APIVersion: api.Version,
		Session:    api.NewSessionState(id, sess),
	})
}

// handleSessionMutate advances a session one revision; with resolve=true
// it also solves the new revision in the same round trip.
//
//	POST /v1/session/{id}/mutate
func (s *server) handleSessionMutate(w http.ResponseWriter, r *http.Request) {
	s.mutates.Add(1)
	id, sess, err := s.lookupSession(r)
	if err != nil {
		s.sessionFail(w, r, err)
		return
	}
	var req api.MutateRequest
	if _, err := s.decode(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	muts, err := api.CompileMutations(req.Mutations)
	if err != nil {
		s.fail(w, err)
		return
	}
	if err := sess.Mutate(muts...); err != nil {
		// A rejected mutation is a client problem: it addressed a node
		// that does not exist or described an invalid revision. The
		// session itself is untouched (Mutate is atomic).
		s.fail(w, &api.Error{Code: api.CodeInvalidRequest, Message: err.Error()})
		return
	}
	resp := &api.SessionResponse{APIVersion: api.Version}
	if req.Resolve {
		out, tree, status, err := s.resolveSession(r, sess)
		if err != nil {
			// The mutation already applied: the revision advanced even
			// though the solve failed. Stamp the post-mutation state into
			// the error so clients never blind-retry the mutation batch.
			wire := api.FromError(err)
			if wire.Details == nil {
				wire.Details = map[string]string{}
			}
			wire.Details["session_id"] = id
			wire.Details["mutations_applied"] = "true"
			wire.Details["fingerprint"] = repro.Fingerprint(tree)
			s.fail(w, wire)
			return
		}
		s.recordOutcome(out)
		resp.Response = api.NewSolveResponse(tree, out, status)
	}
	resp.Session = api.NewSessionState(id, sess)
	s.stampSelf(w)
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionResolve solves the session's current revision — warm when
// a previous outcome exists, through the shared result cache always.
//
//	POST /v1/session/{id}/resolve
func (s *server) handleSessionResolve(w http.ResponseWriter, r *http.Request) {
	id, sess, err := s.lookupSession(r)
	if err != nil {
		s.sessionFail(w, r, err)
		return
	}
	out, tree, status, err := s.resolveSession(r, sess)
	if err != nil {
		s.fail(w, err)
		return
	}
	s.recordOutcome(out)
	// Render against the revision the outcome was solved on: a concurrent
	// mutate may already have advanced sess.Tree().
	s.stampSelf(w)
	writeJSON(w, http.StatusOK, &api.SessionResponse{
		APIVersion: api.Version,
		Session:    api.NewSessionState(id, sess),
		Response:   api.NewSolveResponse(tree, out, status),
	})
}

// handleSessionClose deletes a session.
//
//	DELETE /v1/session/{id}
func (s *server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	id, sess, err := s.lookupSession(r)
	if err != nil {
		s.sessionFail(w, r, err)
		return
	}
	s.sessMu.Lock()
	delete(s.sessions, id)
	s.sessMu.Unlock()
	s.stampSelf(w)
	writeJSON(w, http.StatusOK, &api.SessionResponse{
		APIVersion: api.Version,
		Session:    api.NewSessionState(id, sess),
	})
}

func (s *server) resolveSession(r *http.Request, sess *repro.Session) (*repro.Outcome, *repro.Tree, repro.CacheStatus, error) {
	s.resolves.Add(1)
	ctx, cancel := s.requestContext(r)
	defer cancel()
	return sess.ResolveRevision(ctx)
}

// errSessionNotFound is returned (wrapped with the ID) for lookups of
// unknown, expired or evicted sessions.
var errSessionNotFound = errors.New("unknown session")

// errRelocated reports a lookup that missed because the session migrated
// away mid-request — the call raced sessionRelocated between the routing
// check and the table lookup. sessionFail turns it into a proxy/redirect
// to the adopter instead of a not_found.
type errRelocated struct{ id, node string }

func (e *errRelocated) Error() string {
	return fmt.Sprintf("session %q relocated to %s", e.id, e.node)
}

// sessionFail answers a failed session lookup: a mid-request relocation
// re-routes to the adopter; anything else goes to the client as-is.
func (s *server) sessionFail(w http.ResponseWriter, r *http.Request, err error) {
	var rel *errRelocated
	if errors.As(err, &rel) {
		s.routeTo(w, r, rel.id, rel.node)
		return
	}
	s.fail(w, err)
}

// storeSession registers a session under a fresh random ID, evicting
// expired sessions first and, when the table is still full, the least
// recently used live one — long-idle dynamic workloads lose their warm
// state rather than blocking new ones (clients re-open on not_found).
//
// In cluster mode the ID is prefixed with this node's ring tag
// ("<tag>-<random>"): the session is pinned to its creator, and any
// fleet member receiving a call for it can route to the owner from the
// ID alone (see sessionRouted).
func (s *server) storeSession(sess *repro.Session, defaults api.SolveRequest) (string, error) {
	var raw [16]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return "", fmt.Errorf("httpserve: minting session id: %w", err)
	}
	id := hex.EncodeToString(raw[:])
	if cl := s.cfg.Cluster; cl != nil {
		id = cl.SelfTag() + "-" + id
	}
	now := time.Now()

	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if ttl := s.cfg.SessionTTL; ttl > 0 {
		for k, e := range s.sessions {
			if now.Sub(e.lastUsed) > ttl {
				delete(s.sessions, k)
				s.sessionsEvicted.Add(1)
			}
		}
	}
	if max := s.cfg.MaxSessions; max > 0 && len(s.sessions) >= max {
		lruID, lruAt := "", now
		for k, e := range s.sessions {
			if e.lastUsed.Before(lruAt) {
				lruID, lruAt = k, e.lastUsed
			}
		}
		if lruID != "" {
			delete(s.sessions, lruID)
			s.sessionsEvicted.Add(1)
		}
	}
	s.sessions[id] = &sessionEntry{sess: sess, defaults: defaults, lastUsed: now}
	return id, nil
}

// adoptSession registers a migrated session under its original ID — the
// pin that keeps the ID resolving across the move (the old owner's
// tombstone points here, and this node's lookups find it directly). Any
// tombstone this node holds for the ID is cleared: the session may have
// bounced back in a later view change.
func (s *server) adoptSession(id string, sess *repro.Session, defaults api.SolveRequest) {
	s.sessMu.Lock()
	s.sessions[id] = &sessionEntry{sess: sess, defaults: defaults, lastUsed: time.Now()}
	s.sessMu.Unlock()
	s.clearRelocation(id)
}

// hasSession reports whether the ID is in the local table, without
// refreshing its idle clock — the routing-layer check for sessions
// adopted from a departed owner.
func (s *server) hasSession(id string) bool {
	s.sessMu.Lock()
	_, ok := s.sessions[id]
	s.sessMu.Unlock()
	return ok
}

// lookupSession resolves the {id} path segment, refreshing the entry's
// idle clock and enforcing the TTL on the spot.
func (s *server) lookupSession(r *http.Request) (string, *repro.Session, error) {
	id := r.PathValue("id")
	now := time.Now()
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	e, ok := s.sessions[id]
	if ok && s.cfg.SessionTTL > 0 && now.Sub(e.lastUsed) > s.cfg.SessionTTL {
		delete(s.sessions, id)
		s.sessionsEvicted.Add(1)
		ok = false
	}
	if !ok {
		if node := s.relocatedTo(id); node != "" {
			return "", nil, &errRelocated{id: id, node: node}
		}
		return "", nil, &api.Error{
			Code:    api.CodeNotFound,
			Message: fmt.Sprintf("%v: %q", errSessionNotFound, id),
		}
	}
	e.lastUsed = now
	return id, e.sess, nil
}

// sessionCount reports the live session count (for /debug/vars).
func (s *server) sessionCount() int {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return len(s.sessions)
}
