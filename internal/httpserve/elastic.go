package httpserve

import (
	"encoding/hex"
	"net/http"
	"time"

	"repro"
	"repro/api"
	"repro/internal/boundcache"
	"repro/internal/elastic"
)

// This file is the serving side of the elastic membership layer: the
// member-admin and migration endpoints, the state-export hooks the
// elastic manager pulls warm state through, and the session relocation
// tombstones that keep ID-pinned calls answerable after their session
// moved to a new owner.

// AttachElastic wires an elastic membership manager onto this node:
// membership can then change at runtime (POST /v1/cluster/members, probe
// gossip) and warm state migrates ahead of every routing flip. client
// issues the manager's pushes (nil = default). Must be called before the
// server starts serving — the manager field is read without a lock.
func (s *server) AttachElastic(client *http.Client) *elastic.Manager {
	cl := s.cfg.Cluster
	if cl == nil {
		panic("httpserve: AttachElastic requires Config.Cluster")
	}
	mgr := elastic.New(elastic.Config{
		Cluster: cl,
		Client:  client,
		Exports: elastic.Exports{
			Results:        s.exportResults,
			Sessions:       s.exportSessions,
			Bounds:         s.exportBounds,
			SessionsPushed: s.sessionRelocated,
		},
		// A node voted out of the view starts draining: the new ring routes
		// everything away, and what remains here (tombstone redirects,
		// hop-guarded forwards from lagging peers) it keeps answering.
		OnSelfRemoved: s.Drain,
	})
	s.elastic = mgr
	cl.OnEpoch(mgr.ObserveEpoch)
	return mgr
}

// Elastic returns the attached manager (nil when membership is static).
func (s *server) Elastic() *elastic.Manager { return s.elastic }

// exportResults converts the Service's moved warm cache entries into
// their wire form, grouped by destination node.
func (s *server) exportResults(dest func(fingerprint string) string, limit int) map[string][]api.MigratedResult {
	warm := s.cfg.Service.ExportWarm(limit, dest)
	if len(warm) == 0 {
		return nil
	}
	out := make(map[string][]api.MigratedResult, len(warm))
	for node, entries := range warm {
		batch := make([]api.MigratedResult, 0, len(entries))
		for _, e := range entries {
			batch = append(batch, api.MigratedResult{
				Key:        e.Key,
				Spec:       repro.ToSpec(e.Tree, "migrated"),
				Algorithm:  string(e.Outcome.Algorithm),
				Assignment: api.AssignmentNames(e.Tree, e.Outcome.Assignment),
				Exact:      e.Outcome.Exact,
				LowerBound: e.Outcome.LowerBound,
				Work:       e.Outcome.Work,
				ElapsedUS:  e.Outcome.Elapsed.Microseconds(),
			})
		}
		out[node] = batch
	}
	return out
}

// exportSessions snapshots every live session whose instance fingerprint
// has a migration destination. Called only when this node leaves the
// view (sessions are otherwise ID-pinned here); the warm assignment is
// projected onto the current tree when the last solve predates the last
// mutation, so the adopter never sees a stale revision's hint.
func (s *server) exportSessions(dest func(fingerprint string) string) map[string][]api.MigratedSession {
	type liveSession struct {
		id string
		e  *sessionEntry
	}
	s.sessMu.Lock()
	live := make([]liveSession, 0, len(s.sessions))
	for id, e := range s.sessions {
		live = append(live, liveSession{id, e})
	}
	s.sessMu.Unlock()

	var out map[string][]api.MigratedSession
	for _, ls := range live {
		tree, rev := ls.e.sess.Snapshot()
		node := dest(repro.Fingerprint(tree))
		if node == "" {
			continue
		}
		snap := api.MigratedSession{
			ID:       ls.id,
			Spec:     repro.ToSpec(tree, "session"),
			Revision: rev,
			Defaults: ls.e.defaults,
		}
		if wt, wa := ls.e.sess.WarmState(); wa != nil {
			if wt != tree {
				wa = repro.ProjectAssignment(wt, wa, tree)
			}
			if wa != nil {
				snap.Warm = api.AssignmentNames(tree, wa)
			}
		}
		if out == nil {
			out = map[string][]api.MigratedSession{}
		}
		out[node] = append(out[node], snap)
	}
	return out
}

// exportBounds renders the most valuable proven bound-cache entries in
// wire form, for seeding a joining node.
func (s *server) exportBounds(limit int) []api.MigratedBound {
	exported := s.bounds.Export(limit)
	out := make([]api.MigratedBound, 0, len(exported))
	for i := range exported {
		e := &exported[i]
		out = append(out, api.MigratedBound{
			Hash:     hex.EncodeToString(e.Key.Hash[:]),
			Root:     e.Key.Root,
			Sats:     e.Key.Sats,
			Bands:    e.Key.Bands,
			LB:       e.LB,
			Complete: e.Complete,
			Pattern:  e.Pattern,
		})
	}
	return out
}

// maxRelocations bounds the tombstone table; overflow drops an arbitrary
// old tombstone (its session then answers not_found here, exactly as an
// evicted one would, and the client re-opens).
const maxRelocations = 4096

// sessionRelocated drops a session whose push was acknowledged and
// leaves a relocation tombstone: calls for the ID keep resolving — as a
// redirect or proxy to the adopter — from the node clients knew. The
// tombstone lands before the session is dropped, so a concurrent lookup
// that misses the table always finds the tombstone (lookupSession checks
// it on every miss) and the call proxies instead of answering not_found.
func (s *server) sessionRelocated(id, node string) {
	s.relocMu.Lock()
	if len(s.relocated) >= maxRelocations {
		for k := range s.relocated {
			delete(s.relocated, k)
			break
		}
	}
	s.relocated[id] = node
	s.relocMu.Unlock()
	s.sessMu.Lock()
	delete(s.sessions, id)
	s.sessMu.Unlock()
}

// relocatedTo reports where a migrated session went ("" = not migrated).
func (s *server) relocatedTo(id string) string {
	s.relocMu.Lock()
	defer s.relocMu.Unlock()
	return s.relocated[id]
}

// clearRelocation forgets a tombstone (the session came back here).
func (s *server) clearRelocation(id string) {
	s.relocMu.Lock()
	delete(s.relocated, id)
	s.relocMu.Unlock()
}

var errElasticDisabled = &api.Error{
	Code:    api.CodeInvalidRequest,
	Message: "elastic membership is not enabled on this node",
}

// handleMembersUpdate applies a membership change. Epoch 0 is an
// operator proposal (this node mints the next epoch and broadcasts);
// a non-zero epoch is a numbered view relayed by a peer.
//
//	POST /v1/cluster/members
func (s *server) handleMembersUpdate(w http.ResponseWriter, r *http.Request) {
	mgr := s.elastic
	if mgr == nil {
		s.fail(w, errElasticDisabled)
		return
	}
	var req api.MembersUpdateRequest
	if _, err := s.decode(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	applied := false
	if req.Epoch == 0 {
		if _, err := mgr.Propose(req.Members); err != nil {
			s.fail(w, &api.Error{Code: api.CodeInvalidRequest, Message: err.Error()})
			return
		}
		applied = true
	} else {
		ok, err := mgr.Adopt(req.Epoch, req.Members)
		if err != nil {
			s.fail(w, &api.Error{Code: api.CodeInvalidRequest, Message: err.Error()})
			return
		}
		applied = ok
	}
	cl := s.cfg.Cluster
	writeJSON(w, http.StatusOK, &api.MembersUpdateResponse{
		APIVersion: api.Version,
		Applied:    applied,
		Epoch:      cl.Epoch(),
		Members:    cl.Members(),
	})
}

// handleMigrateCache adopts pushed warm result-cache entries. Entries
// that fail to decode are skipped, not fatal: migrated state is a
// performance asset, and a dropped entry costs one cold solve.
//
//	POST /v1/migrate/cache
func (s *server) handleMigrateCache(w http.ResponseWriter, r *http.Request) {
	mgr := s.elastic
	if mgr == nil {
		s.fail(w, errElasticDisabled)
		return
	}
	if err := mgr.CheckEpoch(r); err != nil {
		s.fail(w, err)
		return
	}
	var req api.MigrateResultsRequest
	if _, err := s.decode(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	adopted := 0
	for i := range req.Entries {
		e := &req.Entries[i]
		tree, err := repro.FromSpec(e.Spec)
		if err != nil {
			continue
		}
		asg, err := api.AssignmentFromNames(tree, e.Assignment)
		if err != nil {
			continue
		}
		out, err := repro.AdoptedOutcome(tree, e.Algorithm, asg, e.Exact, e.LowerBound,
			e.Work, time.Duration(e.ElapsedUS)*time.Microsecond)
		if err != nil {
			continue
		}
		if s.cfg.Service.AdoptWarm(e.Key, tree, out) == nil {
			adopted++
		}
	}
	mgr.CountAdopted(adopted)
	writeJSON(w, http.StatusOK, &api.MigrateResponse{APIVersion: api.Version, Adopted: adopted})
}

// handleMigrateSessions adopts pushed session snapshots: each is
// re-opened under its original ID (so the old owner's tombstone and the
// ID itself both keep resolving) with its revision counter and warm hint
// restored. Compiled plans and bound caches rebuild on first resolve.
//
//	POST /v1/migrate/sessions
func (s *server) handleMigrateSessions(w http.ResponseWriter, r *http.Request) {
	mgr := s.elastic
	if mgr == nil {
		s.fail(w, errElasticDisabled)
		return
	}
	if err := mgr.CheckEpoch(r); err != nil {
		s.fail(w, err)
		return
	}
	var req api.MigrateSessionsRequest
	if _, err := s.decode(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	adopted := 0
	for i := range req.Sessions {
		snap := &req.Sessions[i]
		if snap.ID == "" || snap.Spec == nil {
			continue
		}
		tree, err := repro.FromSpec(snap.Spec)
		if err != nil {
			continue
		}
		sess, err := s.cfg.Service.OpenSession(tree, s.solveOpts(snap.Defaults.Options())...)
		if err != nil {
			continue
		}
		var warm *repro.Assignment
		if len(snap.Warm) > 0 {
			if wa, err := api.AssignmentFromNames(tree, snap.Warm); err == nil {
				warm = wa
			}
		}
		sess.AdoptState(snap.Revision, warm)
		s.adoptSession(snap.ID, sess, snap.Defaults)
		adopted++
	}
	mgr.CountAdopted(adopted)
	writeJSON(w, http.StatusOK, &api.MigrateResponse{APIVersion: api.Version, Adopted: adopted})
}

// handleMigrateBounds adopts pushed proven bound-cache entries into the
// server-wide bound cache. Bounds are never wrong, only possibly never
// matched again, so adoption needs no placement check — just the epoch
// guard against superseded pushers.
//
//	POST /v1/migrate/bounds
func (s *server) handleMigrateBounds(w http.ResponseWriter, r *http.Request) {
	mgr := s.elastic
	if mgr == nil {
		s.fail(w, errElasticDisabled)
		return
	}
	if err := mgr.CheckEpoch(r); err != nil {
		s.fail(w, err)
		return
	}
	var req api.MigrateBoundsRequest
	if _, err := s.decode(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	entries := make([]boundcache.Exported, 0, len(req.Entries))
	for i := range req.Entries {
		e := &req.Entries[i]
		raw, err := hex.DecodeString(e.Hash)
		if err != nil || len(raw) != 32 {
			continue
		}
		var k boundcache.Key
		copy(k.Hash[:], raw)
		k.Root, k.Sats, k.Bands = e.Root, e.Sats, e.Bands
		entries = append(entries, boundcache.Exported{
			Key: k, LB: e.LB, Complete: e.Complete, Pattern: e.Pattern,
		})
	}
	adopted := s.bounds.Import(entries)
	mgr.CountAdopted(adopted)
	writeJSON(w, http.StatusOK, &api.MigrateResponse{APIVersion: api.Version, Adopted: adopted})
}
