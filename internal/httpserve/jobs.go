package httpserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro"
	"repro/api"
	"repro/internal/jobs"
)

// maxLongPoll caps GET /v1/jobs/{id}?wait= so a typo cannot park a
// connection for hours.
const maxLongPoll = 60 * time.Second

// handleJobSubmit enqueues an asynchronous solve. Like session opens, the
// submit is routed (unhedged — a raced submit would mint a duplicate job)
// to the instance fingerprint's ring owner, so a job's progress ring and
// result live next to the instance's cache entries.
//
//	POST /v1/jobs
func (s *server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.jobSubmits.Add(1)
	var req api.JobRequest
	raw, err := s.decode(w, r, &req)
	if err != nil {
		s.fail(w, err)
		return
	}
	if err := req.Validate(); err != nil {
		s.fail(w, err)
		return
	}
	tree, err := req.Tree()
	if err != nil {
		s.fail(w, err)
		return
	}
	if s.maybeForward(w, r, repro.Fingerprint(tree), raw, false) {
		return
	}
	job, err := s.jobs.Submit(req.JobSpec(tree))
	if err != nil {
		if errors.Is(err, jobs.ErrQueueFull) {
			s.fail(w, &api.Error{Code: api.CodeOverloaded, Message: "job queue full; retry with backoff"})
			return
		}
		s.fail(w, err)
		return
	}
	s.stampSelf(w)
	writeJSON(w, http.StatusOK, api.NewJobResponse(job.Snapshot()))
}

// handleJobGet reports a job's snapshot. A wait= query (milliseconds)
// long-polls: the response is delayed until the job reaches a terminal
// state or the wait expires, whichever is first.
//
//	GET /v1/jobs/{id}[?wait=ms]
func (s *server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	job, err := s.lookupJob(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		ms, perr := strconv.ParseInt(waitStr, 10, 64)
		if perr != nil || ms < 0 {
			s.fail(w, &api.Error{Code: api.CodeInvalidRequest, Message: fmt.Sprintf("bad wait %q", waitStr)})
			return
		}
		wait := time.Duration(ms) * time.Millisecond
		if wait > maxLongPoll {
			wait = maxLongPoll
		}
		if wait > 0 {
			job.Wait(r.Context(), wait)
		}
	}
	s.stampSelf(w)
	writeJSON(w, http.StatusOK, api.NewJobResponse(job.Snapshot()))
}

// handleJobEvents streams the job's incumbents as Server-Sent Events:
// one "incumbent" event per ring entry from from_seq (default: all
// retained), then a final "done" event carrying the full job response
// when the job reaches a terminal state. The stream deliberately runs on
// the request's own context — the server-wide request timeout does not
// apply to a watch.
//
//	GET /v1/jobs/{id}/events[?from_seq=n]
func (s *server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job, err := s.lookupJob(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.fail(w, &api.Error{Code: api.CodeInternal, Message: "response writer cannot stream"})
		return
	}
	seq := 0
	if fromStr := r.URL.Query().Get("from_seq"); fromStr != "" {
		n, perr := strconv.Atoi(fromStr)
		if perr != nil || n < 0 {
			s.fail(w, &api.Error{Code: api.CodeInvalidRequest, Message: fmt.Sprintf("bad from_seq %q", fromStr)})
			return
		}
		seq = n
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	s.stampSelf(w)
	w.WriteHeader(http.StatusOK)

	for {
		// Arm the change channel before reading, so an incumbent landing
		// between the read and the select wakes the next iteration instead
		// of being missed.
		changed := job.Changed()
		for _, inc := range job.IncumbentsSince(seq) {
			writeEvent(w, "incumbent", strconv.Itoa(inc.Seq), api.NewJobIncumbent(inc))
			seq = inc.Seq + 1
		}
		if st := job.Snapshot(); st.State.Terminal() {
			writeEvent(w, "done", "", api.NewJobResponse(st))
			flusher.Flush()
			return
		}
		flusher.Flush()
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// writeEvent emits one SSE frame.
func writeEvent(w http.ResponseWriter, event, id string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		return
	}
	if id != "" {
		fmt.Fprintf(w, "id: %s\n", id)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// handleJobCancel cancels a queued or running job through the manager's
// context plumbing; cancelling a terminal job is a no-op that reports the
// final state.
//
//	DELETE /v1/jobs/{id}
func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.lookupJob(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	job.Cancel()
	s.stampSelf(w)
	writeJSON(w, http.StatusOK, api.NewJobResponse(job.Snapshot()))
}

// lookupJob resolves the {id} path segment.
func (s *server) lookupJob(r *http.Request) (*jobs.Job, error) {
	id := r.PathValue("id")
	job, ok := s.jobs.Get(id)
	if !ok {
		return nil, &api.Error{
			Code:    api.CodeNotFound,
			Message: fmt.Sprintf("unknown job %q", id),
		}
	}
	return job, nil
}
