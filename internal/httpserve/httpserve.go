package httpserve

import (
	"bytes"
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/api"
	"repro/internal/cluster"
	"repro/internal/elastic"
	"repro/internal/jobs"
	"repro/internal/pool"
)

// Config parameterises the handler. Service is required; the zero value
// of every other field means "no limit" / sensible default.
type Config struct {
	// Service executes (and caches) the solves.
	Service *repro.Service
	// RequestTimeout is the server-side ceiling applied to every
	// request's context; requests may only tighten it via timeout_ms.
	RequestTimeout time.Duration
	// MaxInflight bounds concurrently served requests; excess requests
	// are rejected with CodeOverloaded (HTTP 429). 0 = unbounded.
	MaxInflight int
	// MaxBatchItems caps one batch's size (default 1024).
	MaxBatchItems int
	// MaxBodyBytes caps one request body (default 8 MiB): oversized
	// payloads are rejected while decoding instead of being buffered.
	MaxBodyBytes int64
	// BatchParallelism bounds the per-batch worker pool (default NumCPU).
	BatchParallelism int
	// MaxSessions caps concurrently live dynamic-tree sessions (default
	// 1024); opening past the cap evicts the least recently used session.
	MaxSessions int
	// SessionTTL expires sessions idle longer than this (default 30m;
	// negative disables expiry). Expired and evicted sessions answer
	// not_found; clients re-open, losing only their warm-start state.
	SessionTTL time.Duration
	// Cluster, when set, makes this node one member of a sharded fleet:
	// solves route to their fingerprint's ring owner, batches scatter by
	// owner, and sessions pin to the node that opened them. Nil serves
	// everything locally (single-node mode).
	Cluster *cluster.Cluster
	// JobWorkers sizes the async job tier's solver pool (default
	// BatchParallelism). Jobs queue behind the pool rather than compete
	// with synchronous solves for the in-flight slots.
	JobWorkers int
	// JobQueueDepth bounds queued-but-not-running jobs (default 256);
	// submits past it are rejected with CodeOverloaded.
	JobQueueDepth int
	// JobTTL is how long finished jobs stay pollable (default 10m).
	JobTTL time.Duration
	// JobPlanner overrides the metareasoning policy picking each job's
	// algorithm and budget (default jobs.DefaultPlanner()).
	JobPlanner *jobs.Planner
}

// Server is the routed handler with its drain control. It implements
// http.Handler; cmd/crserve flips it to draining before closing the
// listener so cluster peers stop routing here mid-shutdown.
type Server struct{ *server }

// New returns the fully routed handler.
func New(cfg Config) *Server {
	if cfg.Service == nil {
		panic("httpserve: Config.Service is required")
	}
	if cfg.MaxBatchItems <= 0 {
		cfg.MaxBatchItems = 1024
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.BatchParallelism <= 0 {
		cfg.BatchParallelism = runtime.NumCPU()
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 1024
	}
	if cfg.SessionTTL == 0 {
		cfg.SessionTTL = 30 * time.Minute
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = cfg.BatchParallelism
	}
	s := &server{
		cfg: cfg, started: time.Now(), metrics: newMetrics(),
		sessions:  map[string]*sessionEntry{},
		relocated: map[string]string{},
		bounds:    repro.NewBoundCache(repro.BoundCacheConfig{}),
	}
	if cfg.MaxInflight > 0 {
		s.slots = make(chan struct{}, cfg.MaxInflight)
	}
	jcfg := jobs.Config{
		Service:    cfg.Service,
		Workers:    cfg.JobWorkers,
		QueueDepth: cfg.JobQueueDepth,
		ResultTTL:  cfg.JobTTL,
		Planner:    cfg.JobPlanner,
	}
	if cl := cfg.Cluster; cl != nil {
		jcfg.SelfTag = cl.SelfTag()
	}
	s.jobs = jobs.New(jcfg)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.timed(epSolve, s.limited(s.handleSolve)))
	mux.HandleFunc("POST /v1/batch", s.timed(epBatch, s.limited(s.handleBatch)))
	mux.HandleFunc("POST /v1/simulate", s.timed(epSimulate, s.limited(s.handleSimulate)))
	mux.HandleFunc("POST /v1/session", s.timed(epSessionOpen, s.limited(s.handleSessionOpen)))
	mux.HandleFunc("GET /v1/session/{id}", s.timed(epSessionGet, s.ownerRouted(s.handleSessionGet)))
	mux.HandleFunc("POST /v1/session/{id}/mutate", s.timed(epSessionMutate, s.limited(s.ownerRouted(s.handleSessionMutate))))
	mux.HandleFunc("POST /v1/session/{id}/resolve", s.timed(epSessionResolve, s.limited(s.ownerRouted(s.handleSessionResolve))))
	mux.HandleFunc("DELETE /v1/session/{id}", s.timed(epSessionClose, s.ownerRouted(s.handleSessionClose)))
	mux.HandleFunc("POST /v1/jobs", s.timed(epJobSubmit, s.limited(s.handleJobSubmit)))
	mux.HandleFunc("GET /v1/jobs/{id}", s.timed(epJobGet, s.ownerRouted(s.handleJobGet)))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.ownerRouted(s.handleJobEvents))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.timed(epJobCancel, s.ownerRouted(s.handleJobCancel)))
	mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	mux.HandleFunc("POST /v1/cluster/members", s.handleMembersUpdate)
	mux.HandleFunc("POST /v1/migrate/cache", s.handleMigrateCache)
	mux.HandleFunc("POST /v1/migrate/sessions", s.handleMigrateSessions)
	mux.HandleFunc("POST /v1/migrate/bounds", s.handleMigrateBounds)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /debug/vars", s.handleVars)
	s.mux = mux
	return &Server{s}
}

type server struct {
	cfg      Config
	mux      *http.ServeMux
	started  time.Time
	slots    chan struct{} // nil = unbounded
	draining atomic.Bool
	metrics  *metrics

	sessMu   sync.Mutex
	sessions map[string]*sessionEntry

	jobs *jobs.Manager

	// elastic is the dynamic-membership manager (nil = static seed list).
	// Set by AttachElastic before the server starts serving.
	elastic *elastic.Manager
	// bounds is the server-wide bound-memoization cache every solve and
	// session shares; proven facts survive their session and migrate to
	// joining nodes.
	bounds *repro.BoundCache
	// relocated maps migrated session IDs to their adopting node — the
	// tombstones ownerRouted consults so pinned IDs outlive a migration.
	relocMu   sync.Mutex
	relocated map[string]string

	solves, batches, simulates, rejected, failed atomic.Int64
	sessionCalls, mutates, resolves              atomic.Int64
	sessionsEvicted                              atomic.Int64
	jobSubmits                                   atomic.Int64

	// Search-node accounting summed over every synchronous solve served
	// (the async job tier keeps its own in jobs.Stats): nodes explored,
	// branches pruned, and bound-memoization hits/misses. Exposed as the
	// "search" block of /debug/vars so a dashboard can watch the
	// explored-per-solve trend fall as session bound caches warm up.
	explored, pruned       atomic.Int64
	boundHits, boundMisses atomic.Int64
}

// recordOutcome folds a served outcome's node accounting into the search
// counters; cache hits replay a stored outcome, so their counters recount
// the original search (cheap, and the trend stays interpretable next to
// the cache block's hit ratio).
func (s *server) recordOutcome(out *repro.Outcome) {
	if out == nil {
		return
	}
	s.explored.Add(int64(out.Work))
	s.pruned.Add(int64(out.Pruned))
	s.boundHits.Add(int64(out.BoundHits))
	s.boundMisses.Add(int64(out.BoundMisses))
}

// ServeHTTP dispatches to the routed mux.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain flips the node into draining: /healthz starts answering
// "draining" (503) and the cluster membership advertises the state, so
// peers stop routing new work here while the listener is still open and
// in-flight requests finish. The handler itself keeps serving — a
// draining node must answer everything it already accepted, plus
// hop-guarded forwards from peers whose ring view lags.
func (s *server) Drain() {
	s.draining.Store(true)
	if cl := s.cfg.Cluster; cl != nil {
		cl.SetDraining(true)
	}
}

// Draining reports whether Drain was called.
func (s *server) Draining() bool { return s.draining.Load() }

// Close stops the async job tier: running jobs are cancelled, queued
// jobs drain as canceled, and the workers exit. The HTTP routes keep
// answering (polls of finished jobs still work) — callers close the
// listener separately.
func (s *server) Close() { s.jobs.Close() }

// Jobs exposes the job manager, for tests and embedders.
func (s *server) Jobs() *jobs.Manager { return s.jobs }

// limited wraps a handler with the concurrency limiter: a request that
// finds every slot taken is rejected immediately — shedding load beats
// queueing it when callers retry with backoff.
func (s *server) limited(h http.HandlerFunc) http.HandlerFunc {
	if s.slots == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.slots <- struct{}{}:
			defer func() { <-s.slots }()
			h(w, r)
		default:
			s.rejected.Add(1)
			writeError(w, &api.Error{
				Code:    api.CodeOverloaded,
				Message: fmt.Sprintf("server at max in-flight requests (%d)", s.cfg.MaxInflight),
			})
		}
	}
}

// solveOpts layers a request's options over the server-wide bound cache:
// every exact solve on this node reads and proves into one shared pool,
// which is also what the elastic layer exports to joining nodes.
func (s *server) solveOpts(reqOpts []repro.Option) []repro.Option {
	opts := make([]repro.Option, 0, len(reqOpts)+1)
	opts = append(opts, repro.WithBoundCache(s.bounds))
	return append(opts, reqOpts...)
}

// requestContext applies the server-side timeout ceiling.
func (s *server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	}
	return r.Context(), func() {}
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.solves.Add(1)
	var req api.SolveRequest
	raw, err := s.decode(w, r, &req)
	if err != nil {
		s.fail(w, err)
		return
	}
	tree, err := req.Tree()
	if err != nil {
		s.fail(w, err)
		return
	}
	if s.maybeForward(w, r, repro.Fingerprint(tree), raw, true) {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	out, status, err := s.cfg.Service.Solve(ctx, tree, s.solveOpts(req.Options())...)
	if err != nil {
		s.fail(w, err)
		return
	}
	s.recordOutcome(out)
	s.stampSelf(w)
	writeJSON(w, http.StatusOK, api.NewSolveResponse(tree, out, status))
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.batches.Add(1)
	var req api.BatchRequest
	if _, err := s.decode(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		s.fail(w, &api.Error{
			Code:    api.CodeInvalidRequest,
			Message: fmt.Sprintf("batch of %d items exceeds the limit of %d", len(req.Items), s.cfg.MaxBatchItems),
		})
		return
	}
	if s.cfg.Cluster != nil && !forwarded(r) && len(req.Items) > 0 {
		s.scatterBatch(w, r, &req)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()

	resp := &api.BatchResponse{APIVersion: api.Version, Items: make([]api.BatchItem, len(req.Items))}
	pool.Run(ctx, len(req.Items), s.cfg.BatchParallelism, func(i int) {
		resp.Items[i] = s.solveItem(ctx, &req.Items[i])
	})
	// Items the feeder never dispatched (batch cancelled mid-flight)
	// must still carry a result.
	if err := ctx.Err(); err != nil {
		for i := range resp.Items {
			if resp.Items[i].Response == nil && resp.Items[i].Error == nil {
				resp.Items[i].Error = api.FromError(err)
			}
		}
	}
	s.stampSelf(w)
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) solveItem(ctx context.Context, item *api.SolveRequest) api.BatchItem {
	tree, err := item.Tree()
	if err != nil {
		return api.BatchItem{Error: api.FromError(err)}
	}
	out, status, err := s.cfg.Service.Solve(ctx, tree, s.solveOpts(item.Options())...)
	if err != nil {
		return api.BatchItem{Error: api.FromError(err)}
	}
	s.recordOutcome(out)
	return api.BatchItem{Response: api.NewSolveResponse(tree, out, status)}
}

func (s *server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.simulates.Add(1)
	var req api.SimulateRequest
	raw, err := s.decode(w, r, &req)
	if err != nil {
		s.fail(w, err)
		return
	}
	simCfg, mode, err := req.SimConfig()
	if err != nil {
		s.fail(w, err)
		return
	}
	tree, err := req.Tree()
	if err != nil {
		s.fail(w, err)
		return
	}
	if s.maybeForward(w, r, repro.Fingerprint(tree), raw, true) {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	out, status, err := s.cfg.Service.Solve(ctx, tree, s.solveOpts(req.Options())...)
	if err != nil {
		s.fail(w, err)
		return
	}
	s.recordOutcome(out)
	res, err := repro.Simulate(tree, out.Assignment, simCfg)
	if err != nil {
		s.fail(w, err)
		return
	}
	s.stampSelf(w)
	writeJSON(w, http.StatusOK, &api.SimulateResponse{
		APIVersion:  api.Version,
		Fingerprint: repro.Fingerprint(tree),
		Algorithm:   string(out.Algorithm),
		Delay:       out.Delay,
		Cached:      status == repro.CacheHit,
		Mode:        mode,
		Frames:      len(res.Frames),
		Makespan:    res.Makespan,
		Throughput:  res.Throughput,
		BusyHost:    res.BusyHost,
	})
}

func (s *server) handleAlgorithms(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, api.ListAlgorithms())
}

// handleHealthz answers "ok" (200) while serving and "draining" (503)
// once Drain was called: the non-200 pulls the node from load-balancer
// rotation, and cluster peers' probes parse the body so a draining node
// reads as alive-but-shedding rather than dead. In cluster mode the
// response advertises this node's view epoch — the gossip path that lets
// a peer that missed a membership broadcast notice and catch up.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if cl := s.cfg.Cluster; cl != nil {
		w.Header().Set(api.EpochHeader, strconv.FormatUint(cl.Epoch(), 10))
	}
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleVars emits expvar-compatible JSON: every published expvar (which
// includes cmdline and memstats) plus this server's cache and request
// counters under "crserve". The server's own vars are rendered per
// request instead of registered globally, so many handlers can coexist
// in one process (expvar.Publish panics on duplicates).
//
// The "runtime" block carries the scheduler and allocator gauges the
// flat-plan relayering is tuned against: GOMAXPROCS, heap size and
// cumulative allocation counters, so a dashboard can confirm the warm
// serve path really holds its zero-allocation contract in production
// (mallocs should be flat between scrapes under a cache-hit-heavy load).
//
// The "latency" block carries per-endpoint quantile summaries (count,
// mean/p50/p95/p99/max in µs) and "inflight" the concurrently-served
// request gauge — the server-side half of what the crload harness
// measures from the client side (internal/load's collector scrapes both
// and persists them next to the client histograms).
func (s *server) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprint(w, "{")
	expvar.Do(func(kv expvar.KeyValue) {
		fmt.Fprintf(w, "%q: %s, ", kv.Key, kv.Value)
	})
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	ownVars := map[string]any{
		"cache": s.cfg.Service.Stats(),
		"requests": map[string]int64{
			"solve":        s.solves.Load(),
			"batch":        s.batches.Load(),
			"simulate":     s.simulates.Load(),
			"session_open": s.sessionCalls.Load(),
			"mutate":       s.mutates.Load(),
			"resolve":      s.resolves.Load(),
			"job_submit":   s.jobSubmits.Load(),
			"rejected":     s.rejected.Load(),
			"failed":       s.failed.Load(),
		},
		"jobs": s.jobs.Stats(),
		"search": map[string]int64{
			"explored":     s.explored.Load(),
			"pruned":       s.pruned.Load(),
			"bound_hits":   s.boundHits.Load(),
			"bound_misses": s.boundMisses.Load(),
		},
		"sessions": map[string]int64{
			"live":    int64(s.sessionCount()),
			"evicted": s.sessionsEvicted.Load(),
		},
		"latency":  s.metrics.latencyVars(),
		"inflight": s.metrics.inflight.Load(),
		"runtime": map[string]any{
			"gomaxprocs":        runtime.GOMAXPROCS(0),
			"num_cpu":           runtime.NumCPU(),
			"heap_alloc_bytes":  ms.HeapAlloc,
			"heap_objects":      ms.HeapObjects,
			"total_alloc_bytes": ms.TotalAlloc,
			"mallocs":           ms.Mallocs,
			"num_gc":            ms.NumGC,
			"gc_cpu_fraction":   ms.GCCPUFraction,
		},
		"uptime_seconds": time.Since(s.started).Seconds(),
		"goroutines":     runtime.NumGoroutine(),
	}
	if cl := s.cfg.Cluster; cl != nil {
		states := map[string]string{}
		for _, n := range cl.Snapshot() {
			states[n.ID] = n.State.String()
		}
		ownVars["cluster"] = map[string]any{
			"self":     cl.Self(),
			"epoch":    cl.Epoch(),
			"draining": s.draining.Load(),
			"stats":    cl.Stats(),
			"states":   states,
		}
	}
	if s.elastic != nil {
		ownVars["elastic"] = s.elastic.Counters()
	}
	own, _ := json.Marshal(ownVars)
	fmt.Fprintf(w, "%q: %s}", "crserve", own)
}

func (s *server) fail(w http.ResponseWriter, err error) {
	s.failed.Add(1)
	writeError(w, api.FromError(err))
}

// decode reads the JSON request body strictly: the size cap keeps one
// request from buffering unbounded memory, and unknown fields are typos
// until a future wire version says otherwise. The raw bytes are returned
// so cluster forwarding can relay the request verbatim instead of
// re-serialising the decoded form.
func (s *server) decode(w http.ResponseWriter, r *http.Request, into any) ([]byte, error) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		return nil, &api.Error{Code: api.CodeInvalidRequest, Message: "reading request body: " + err.Error()}
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return nil, &api.Error{Code: api.CodeInvalidRequest, Message: "decoding request body: " + err.Error()}
	}
	return raw, nil
}

func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(payload)
}

func writeError(w http.ResponseWriter, e *api.Error) {
	status := e.Code.HTTPStatus()
	if status == http.StatusTooManyRequests {
		// Load shedding is by design momentary (a full limiter or job
		// queue, not a stuck server): tell well-behaved clients when to
		// come back instead of letting them hammer the limiter.
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, e)
}
