package httpserve

import (
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/hdr"
)

// Endpoint labels of the latency gauges published in /debug/vars. The
// set is fixed at construction so recording is a map read on an
// immutable map — no lock on the request path.
const (
	epSolve          = "solve"
	epBatch          = "batch"
	epSimulate       = "simulate"
	epSessionOpen    = "session_open"
	epSessionGet     = "session_get"
	epSessionMutate  = "session_mutate"
	epSessionResolve = "session_resolve"
	epSessionClose   = "session_close"
	epJobSubmit      = "job_submit"
	epJobGet         = "job_get"
	epJobCancel      = "job_cancel"
)

// trackedEndpoints lists every labelled endpoint, in the order the
// /debug/vars block reports them.
var trackedEndpoints = []string{
	epSolve, epBatch, epSimulate,
	epSessionOpen, epSessionGet, epSessionMutate, epSessionResolve, epSessionClose,
	epJobSubmit, epJobGet, epJobCancel,
}

// metrics carries the server-side observability state: one latency
// histogram per endpoint plus the in-flight gauge. Server-side latency
// covers the full handler (decode, route/forward, solve, encode), so a
// load harness scraping it sees everything but the network itself —
// the client-minus-server gap is the wire plus queueing.
type metrics struct {
	latency  map[string]*hdr.Histogram
	inflight atomic.Int64
}

func newMetrics() *metrics {
	m := &metrics{latency: make(map[string]*hdr.Histogram, len(trackedEndpoints))}
	for _, ep := range trackedEndpoints {
		m.latency[ep] = &hdr.Histogram{}
	}
	return m
}

// timed wraps a handler with the endpoint's histogram and the in-flight
// gauge. It is the outermost wrapper on every labelled route, so
// rejected (429) and failed requests are measured too — tail latency
// that only counts successes is fiction.
func (s *server) timed(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.metrics.latency[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.inflight.Add(1)
		start := time.Now()
		defer func() {
			hist.Record(time.Since(start))
			s.metrics.inflight.Add(-1)
		}()
		h(w, r)
	}
}

// latencyVars snapshots every endpoint histogram for /debug/vars,
// omitting endpoints that have served nothing to keep scrapes small.
func (m *metrics) latencyVars() map[string]hdr.Summary {
	out := make(map[string]hdr.Summary, len(trackedEndpoints))
	for _, ep := range trackedEndpoints {
		if snap := m.latency[ep].Snapshot(); snap.Count > 0 {
			out[ep] = snap
		}
	}
	return out
}
