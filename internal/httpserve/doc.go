// Package httpserve mounts a repro.Service behind the versioned wire API
// of package api: JSON over HTTP under the /v1 prefix, with a concurrency
// limiter, per-request timeouts and introspection endpoints. cmd/crserve
// is the thin binary around it; tests and examples embed the handler
// directly.
//
// Endpoints:
//
//	POST   /v1/solve                one instance        -> api.SolveResponse
//	POST   /v1/batch                many instances      -> api.BatchResponse
//	POST   /v1/simulate             solve + replay      -> api.SimulateResponse
//	POST   /v1/session              open dynamic tree   -> api.SessionResponse
//	GET    /v1/session/{id}         session state       -> api.SessionResponse
//	POST   /v1/session/{id}/mutate  apply mutations     -> api.SessionResponse
//	POST   /v1/session/{id}/resolve warm re-solve       -> api.SessionResponse
//	DELETE /v1/session/{id}         close session       -> api.SessionResponse
//	GET    /v1/algorithms           registry listing    -> api.AlgorithmsResponse
//	GET    /healthz                 liveness probe      -> "ok"
//	GET    /debug/vars              expvar + cache/request/session counters (JSON)
//
// Every failure body is an api.Error; the HTTP status is the error code's
// canonical mapping (api.ErrorCode.HTTPStatus).
package httpserve
