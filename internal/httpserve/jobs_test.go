package httpserve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/api"
)

// submitJob posts a job and decodes the accepted snapshot.
func submitJob(t *testing.T, base string, req *api.JobRequest) *api.JobResponse {
	t.Helper()
	resp, body := post(t, base+"/v1/jobs", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var out api.JobResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding job response: %v", err)
	}
	if out.JobID == "" {
		t.Fatalf("job response carries no id: %s", body)
	}
	return &out
}

// pollJob long-polls until the job is terminal or the deadline passes.
func pollJob(t *testing.T, base, id string, timeout time.Duration) *api.JobResponse {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id + "?wait=500")
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		var out api.JobResponse
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding poll: %v", err)
		}
		if jobStateTerminal(out.State) {
			return &out
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, out.State)
		}
	}
}

func jobStateTerminal(state string) bool {
	switch state {
	case "done", "failed", "canceled", "expired":
		return true
	}
	return false
}

func TestJobEndpointLifecycle(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	spec := testSpec("job-life")

	// The synchronous answer is the reference the async path must match.
	sync, _ := solveVia(t, srv.URL, &api.SolveRequest{Spec: spec})

	accepted := submitJob(t, srv.URL, &api.JobRequest{SolveRequest: api.SolveRequest{Spec: spec}})
	if jobStateTerminal(accepted.State) && accepted.State != "done" {
		t.Fatalf("fresh job in state %q", accepted.State)
	}
	final := pollJob(t, srv.URL, accepted.JobID, 10*time.Second)
	if final.State != "done" || final.Result == nil {
		t.Fatalf("final = %q result=%v error=%v", final.State, final.Result, final.Error)
	}
	if final.Result.Delay != sync.Delay {
		t.Fatalf("async delay %v != sync %v", final.Result.Delay, sync.Delay)
	}
	if !final.Result.Exact || final.Gap != 0 {
		t.Fatalf("small instance should prove optimality: exact=%v gap=%v", final.Result.Exact, final.Gap)
	}
	if len(final.Incumbents) == 0 || final.NextSeq == 0 {
		t.Fatalf("no incumbents on the wire: %+v", final)
	}
	if final.PlanReason == "" || final.Algorithm == "" {
		t.Fatalf("plan not reported: %+v", final)
	}

	// The job tier surfaces in /debug/vars.
	vars, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer vars.Body.Close()
	var doc struct {
		Crserve struct {
			Jobs     map[string]any   `json:"jobs"`
			Requests map[string]int64 `json:"requests"`
		} `json:"crserve"`
	}
	if err := json.NewDecoder(vars.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Crserve.Jobs["submitted"] != float64(1) || doc.Crserve.Requests["job_submit"] != 1 {
		t.Fatalf("job counters not exported: %+v", doc.Crserve)
	}
}

// TestJobDeadlineVsExactOverHTTP is the wire-level acceptance: the same
// instance submitted with a deadline far below its exact solve time comes
// back done with a feasible partial result and a positive bound gap, while
// the unconstrained submit reaches the proven optimum.
func TestJobDeadlineVsExactOverHTTP(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	spec := randomSpec(1, 40) // ~400ms of unconstrained branch-and-bound

	// The deadline job runs first: the tier's bound cache is cold, so the
	// 50ms budget genuinely truncates the search. (Submitted after the
	// unconstrained job it would replay that job's recorded optimum from
	// the shared bound cache and come back exact in microseconds.)
	rushed := submitJob(t, srv.URL, &api.JobRequest{
		SolveRequest: api.SolveRequest{Spec: spec, Algorithm: string(repro.BranchBound), Budget: 1 << 28},
		DeadlineMS:   50,
	})
	partial := pollJob(t, srv.URL, rushed.JobID, 10*time.Second)

	full := submitJob(t, srv.URL, &api.JobRequest{
		SolveRequest: api.SolveRequest{Spec: spec, Algorithm: string(repro.BranchBound), Budget: 1 << 28},
	})
	exact := pollJob(t, srv.URL, full.JobID, time.Minute)
	if exact.State != "done" || exact.Result == nil || !exact.Result.Exact {
		t.Fatalf("unconstrained job: state=%q result=%+v", exact.State, exact.Result)
	}
	if exact.Gap != 0 {
		t.Fatalf("proven optimum should report gap 0, got %v", exact.Gap)
	}

	if partial.State != "done" || partial.Result == nil {
		t.Fatalf("deadline job: state=%q error=%+v", partial.State, partial.Error)
	}
	if !partial.Result.Partial {
		t.Fatalf("deadline job returned a non-partial result in %dms", partial.ElapsedMS)
	}
	if len(partial.Result.Assignment) == 0 {
		t.Fatal("partial result carries no assignment")
	}
	if partial.Result.LowerBound <= 0 || partial.Gap < 0 {
		t.Fatalf("partial result must report its bound gap: lb=%v gap=%v", partial.Result.LowerBound, partial.Gap)
	}
	if partial.Result.Delay < exact.Result.Delay {
		t.Fatalf("partial %v beats the optimum %v", partial.Result.Delay, exact.Result.Delay)
	}
}

// TestJobEventsStreamSSE: the SSE stream delivers at least one incumbent
// event before the terminal "done" event on an instance large enough to
// search for a while.
func TestJobEventsStreamSSE(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	spec := randomSpec(1, 40)

	accepted := submitJob(t, srv.URL, &api.JobRequest{
		SolveRequest: api.SolveRequest{Spec: spec, Algorithm: string(repro.BranchBound), Budget: 1 << 28},
		DeadlineMS:   400,
	})
	resp, err := http.Get(srv.URL + "/v1/jobs/" + accepted.JobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	var incumbents int
	var done *api.JobResponse
	var event string
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "incumbent":
				var inc api.JobIncumbent
				if err := json.Unmarshal([]byte(data), &inc); err != nil {
					t.Fatalf("bad incumbent frame: %v in %q", err, data)
				}
				if inc.Seq != incumbents {
					t.Fatalf("incumbent seq %d, want %d", inc.Seq, incumbents)
				}
				incumbents++
			case "done":
				done = &api.JobResponse{}
				if err := json.Unmarshal([]byte(data), done); err != nil {
					t.Fatalf("bad done frame: %v", err)
				}
			}
		}
		if done != nil {
			break
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if incumbents == 0 {
		t.Fatal("SSE delivered no incumbent before completion")
	}
	if done == nil || done.State != "done" || done.Result == nil {
		t.Fatalf("stream ended without a done event: %+v", done)
	}
}

func TestJobCancelEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	spec := randomSpec(2, 64) // unconstrained bnb never finishes in test time

	accepted := submitJob(t, srv.URL, &api.JobRequest{
		SolveRequest: api.SolveRequest{Spec: spec, Algorithm: string(repro.BranchBound), Budget: 1 << 40},
	})
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+accepted.JobID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	final := pollJob(t, srv.URL, accepted.JobID, 10*time.Second)
	if final.State != "canceled" {
		t.Fatalf("state after cancel = %q", final.State)
	}
}

func TestJobEndpointErrors(t *testing.T) {
	srv, _ := newTestServer(t, Config{})

	if resp, _ := post(t, srv.URL+"/v1/jobs", &api.JobRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing spec: %d", resp.StatusCode)
	}
	if resp, _ := post(t, srv.URL+"/v1/jobs", &api.JobRequest{
		SolveRequest: api.SolveRequest{Spec: testSpec("neg")}, DeadlineMS: -1,
	}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative deadline: %d", resp.StatusCode)
	}
	if resp, err := http.Get(srv.URL + "/v1/jobs/nope"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %v %d", err, resp.StatusCode)
	}

	accepted := submitJob(t, srv.URL, &api.JobRequest{SolveRequest: api.SolveRequest{Spec: testSpec("ok")}})
	if resp, err := http.Get(srv.URL + "/v1/jobs/" + accepted.JobID + "?wait=banana"); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad wait: %v %d", err, resp.StatusCode)
	}
}

// TestJobQueueFullRetryAfter: a saturated job queue answers 429 with a
// Retry-After hint, and the rejected submit never enters the stats.
func TestJobQueueFullRetryAfter(t *testing.T) {
	srv, _ := newTestServer(t, Config{JobWorkers: 1, JobQueueDepth: 1})
	long := func(seed int64) *api.JobRequest {
		return &api.JobRequest{
			SolveRequest: api.SolveRequest{Spec: randomSpec(seed, 64), Algorithm: string(repro.BranchBound), Budget: 1 << 40},
		}
	}
	blocker := submitJob(t, srv.URL, long(3))
	// Wait for the single worker to dequeue the blocker so the queue slot
	// frees for the next submit.
	waitRunning := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/v1/jobs/" + blocker.JobID)
		if err != nil {
			t.Fatal(err)
		}
		var out api.JobResponse
		json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if out.State == "running" {
			break
		}
		if time.Now().After(waitRunning) {
			t.Fatalf("blocker stuck in %q", out.State)
		}
	}
	submitJob(t, srv.URL, long(4)) // fills the queue

	resp, body := post(t, srv.URL+"/v1/jobs", long(5))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var apiErr api.Error
	if err := json.Unmarshal(body, &apiErr); err != nil || apiErr.Code != api.CodeOverloaded {
		t.Fatalf("error body: %s", body)
	}
}

// TestClusterJobPinning mirrors the session pinning contract for jobs:
// submits route to the instance's ring owner, the ID carries the owner
// tag, GETs via non-owners redirect there, and cancels proxy through.
func TestClusterJobPinning(t *testing.T) {
	f := startTestFleet(t, 3, testFleetOptions())
	spec := specOwnedBy(t, f, 1, 40)

	accepted := submitJob(t, f.Nodes[0].URL, &api.JobRequest{
		SolveRequest: api.SolveRequest{Spec: spec, Algorithm: string(repro.BranchBound), Budget: 1 << 28},
		DeadlineMS:   30_000,
	})
	ownerTag := f.Nodes[1].Cluster.SelfTag()
	if !strings.HasPrefix(accepted.JobID, ownerTag+"-") {
		t.Fatalf("job id %q not pinned to owner tag %q", accepted.JobID, ownerTag)
	}

	// GET via a non-owner answers 307 to the owner…
	noRedirect := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse }}
	get, err := noRedirect.Get(f.Nodes[2].URL + "/v1/jobs/" + accepted.JobID)
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("GET via non-owner: %d", get.StatusCode)
	}
	if loc := get.Header.Get("Location"); !strings.HasPrefix(loc, f.Nodes[1].URL) {
		t.Fatalf("redirect to %q, owner is %q", loc, f.Nodes[1].URL)
	}

	// …and a default client polls it transparently through any node.
	final := pollJob(t, f.Nodes[2].URL, accepted.JobID, time.Minute)
	if final.State != "done" || final.Result == nil {
		t.Fatalf("cross-node poll: state=%q", final.State)
	}

	// A second job on a long search cancels through a non-owner (proxied).
	// 64 CRUs with an effectively unbounded budget: the search cannot
	// finish before the cancel arrives.
	long := submitJob(t, f.Nodes[0].URL, &api.JobRequest{
		SolveRequest: api.SolveRequest{Spec: specOwnedBy(t, f, 1, 64), Algorithm: string(repro.BranchBound), Budget: 1 << 40},
	})
	req, _ := http.NewRequest(http.MethodDelete, f.Nodes[2].URL+"/v1/jobs/"+long.JobID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied cancel: %d", resp.StatusCode)
	}
	if got := pollJob(t, f.Nodes[0].URL, long.JobID, 10*time.Second); got.State != "canceled" {
		t.Fatalf("state after proxied cancel = %q", got.State)
	}
}

// TestJobPortfolioOverHTTP exercises portfolio mode end to end on the
// wire: the plan reports the race, and the result arrives with a gap.
func TestJobPortfolioOverHTTP(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	accepted := submitJob(t, srv.URL, &api.JobRequest{
		SolveRequest: api.SolveRequest{Spec: randomSpec(1, 40), Seed: 5},
		DeadlineMS:   2000,
		Portfolio:    true,
	})
	final := pollJob(t, srv.URL, accepted.JobID, 30*time.Second)
	if final.State != "done" || final.Result == nil {
		t.Fatalf("portfolio job: state=%q error=%+v", final.State, final.Error)
	}
	if !final.Portfolio || final.Heuristic == "" {
		t.Fatalf("portfolio plan not reported: %+v", final)
	}
	if len(final.Incumbents) == 0 {
		t.Fatal("portfolio streamed no incumbents")
	}
}
