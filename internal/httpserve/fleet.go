package httpserve

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/elastic"
)

// FleetNode is one member of an in-process fleet: a full crserve stack —
// its own Service (solver + caches), cluster view, elastic membership
// manager and HTTP listener on a loopback port.
type FleetNode struct {
	URL     string
	Service *repro.Service
	Handler *Server
	Cluster *cluster.Cluster
	Elastic *elastic.Manager

	srv    *http.Server
	lis    net.Listener
	killed atomic.Bool
}

// Kill abruptly stops the node: the listener and every open connection
// close immediately, as a crashed process would. The node's cluster
// probes keep running (they are the dead node's own view and harmless);
// Fleet.Close still cleans them up.
func (n *FleetNode) Kill() {
	n.killed.Store(true)
	n.srv.Close()
}

// Alive reports whether the node still accepts work (not killed, not
// voted out and draining).
func (n *FleetNode) Alive() bool { return !n.killed.Load() && !n.Handler.Draining() }

// Fleet is an in-process cluster of crserve nodes, used by the cluster
// tests, the P2 benchmark and cmd/crcluster. It is a real fleet in every
// sense but the process boundary: N listeners, N services, N ring views,
// HTTP between them — and, with the elastic layer attached to every
// node, it grows (Spawn) and shrinks (Leave) at runtime.
type Fleet struct {
	mu    sync.Mutex // guards Nodes against concurrent Spawn/Leave
	Nodes []*FleetNode

	opts       FleetOptions
	newService func() *repro.Service
}

// FleetOptions tunes StartFleet.
type FleetOptions struct {
	// Serve is the per-node handler config; Service and Cluster are
	// filled per node (a nil Service field means "new Service with a
	// 4096-entry cache per node", or NewService overrides).
	Serve Config
	// Cluster is the per-node cluster config; Self and Peers are filled
	// per node, and a zero Epoch becomes 1 so runtime view changes
	// (strictly-higher epochs) are always possible.
	Cluster cluster.Config
	// NewService builds each node's Service (default: fresh solver with a
	// 4096-entry cache).
	NewService func() *repro.Service
	// StartProbes launches each node's membership probe loop.
	StartProbes bool
}

// StartFleet starts n nodes wired into one cluster and returns once all
// listeners accept. Call Close when done.
func StartFleet(n int, opts FleetOptions) (*Fleet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("httpserve: fleet size %d", n)
	}
	if opts.Cluster.Epoch == 0 {
		opts.Cluster.Epoch = 1
	}
	newService := opts.NewService
	if newService == nil {
		newService = func() *repro.Service { return repro.NewService(nil, 4096) }
	}

	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for j := 0; j < i; j++ {
				listeners[j].Close()
			}
			return nil, fmt.Errorf("httpserve: fleet listener: %w", err)
		}
		listeners[i] = lis
		urls[i] = "http://" + lis.Addr().String()
	}

	f := &Fleet{Nodes: make([]*FleetNode, n), opts: opts, newService: newService}
	for i := range f.Nodes {
		node, err := f.startNode(listeners[i], urls[i], urls, opts.Cluster.Epoch)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Nodes[i] = node
	}
	return f, nil
}

// startNode builds and serves one node at the given epoch and member
// list. The caller still owns the listener when an error is returned.
func (f *Fleet) startNode(lis net.Listener, self string, members []string, epoch uint64) (*FleetNode, error) {
	ccfg := f.opts.Cluster
	ccfg.Self = self
	ccfg.Peers = append([]string(nil), members...)
	ccfg.Epoch = epoch
	cl, err := cluster.New(ccfg)
	if err != nil {
		return nil, err
	}
	scfg := f.opts.Serve
	scfg.Service = f.newService()
	scfg.Cluster = cl
	h := New(scfg)
	node := &FleetNode{
		URL: self, Service: scfg.Service, Handler: h, Cluster: cl,
		srv: &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second},
		lis: lis,
	}
	node.Elastic = h.AttachElastic(nil)
	go node.srv.Serve(node.lis)
	if f.opts.StartProbes {
		cl.Start()
	}
	return node, nil
}

// Spawn adds a node to the running fleet: it starts a fresh stack on a
// new loopback port at the current view's epoch, then has a live
// incumbent propose the widened member list. The incumbent's proposal
// (epoch+1) is what makes the join warm — the incumbent pushes its moved
// ranges before flipping its routing, and its broadcast makes every
// other member do the same — so by the time traffic routes to the new
// node, the warm state it now owns is already there.
func (f *Fleet) Spawn() (*FleetNode, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var inc *FleetNode
	for _, n := range f.Nodes {
		if n != nil && n.Alive() {
			inc = n
			break
		}
	}
	if inc == nil {
		return nil, fmt.Errorf("httpserve: no live node to join through")
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("httpserve: fleet listener: %w", err)
	}
	members := inc.Cluster.Members()
	self := "http://" + lis.Addr().String()
	node, err := f.startNode(lis, self, append(members, self), inc.Cluster.Epoch())
	if err != nil {
		lis.Close()
		return nil, err
	}
	f.Nodes = append(f.Nodes, node)
	if _, err := inc.Elastic.Propose(append(members, self)); err != nil {
		return node, fmt.Errorf("httpserve: joining %s: %w", self, err)
	}
	return node, nil
}

// Leave votes node i out of the fleet: the node itself proposes the
// narrowed view, which pushes its sessions and moved cache entries to
// their new owners and flips it to draining. The process keeps running —
// it answers relocation redirects and lagging forwards — until Close.
func (f *Fleet) Leave(i int) error {
	f.mu.Lock()
	if i < 0 || i >= len(f.Nodes) || f.Nodes[i] == nil {
		f.mu.Unlock()
		return fmt.Errorf("httpserve: no fleet node %d", i)
	}
	node := f.Nodes[i]
	f.mu.Unlock()
	var rest []string
	for _, m := range node.Cluster.Members() {
		if m != node.URL {
			rest = append(rest, m)
		}
	}
	if len(rest) == 0 {
		return fmt.Errorf("httpserve: cannot drain the last fleet node")
	}
	_, err := node.Elastic.Propose(rest)
	return err
}

// DrainNewest votes out the most recently added live node, never node 0
// (the fleet's stable entry point) — the autoscaling watcher's shrink
// step.
func (f *Fleet) DrainNewest() error {
	f.mu.Lock()
	idx := -1
	for i := len(f.Nodes) - 1; i > 0; i-- {
		if f.Nodes[i] != nil && f.Nodes[i].Alive() {
			idx = i
			break
		}
	}
	f.mu.Unlock()
	if idx < 0 {
		return fmt.Errorf("httpserve: no drainable node")
	}
	return f.Leave(idx)
}

// Alive counts nodes still accepting work — the fleet size the
// autoscaling watcher steers.
func (f *Fleet) Alive() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, node := range f.Nodes {
		if node != nil && node.Alive() {
			n++
		}
	}
	return n
}

// URLs returns the base URLs of nodes still accepting work.
func (f *Fleet) URLs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.Nodes))
	for _, n := range f.Nodes {
		if n != nil && n.Alive() {
			out = append(out, n.URL)
		}
	}
	return out
}

// Close stops every node's probes, job workers and listener.
func (f *Fleet) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, n := range f.Nodes {
		if n == nil {
			continue
		}
		n.Cluster.Stop()
		n.Handler.Close()
		n.srv.Close()
	}
}
