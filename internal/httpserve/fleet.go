package httpserve

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"repro"
	"repro/internal/cluster"
)

// FleetNode is one member of an in-process fleet: a full crserve stack —
// its own Service (solver + caches), cluster view and HTTP listener on a
// loopback port.
type FleetNode struct {
	URL     string
	Service *repro.Service
	Handler *Server
	Cluster *cluster.Cluster

	srv *http.Server
	lis net.Listener
}

// Kill abruptly stops the node: the listener and every open connection
// close immediately, as a crashed process would. The node's cluster
// probes keep running (they are the dead node's own view and harmless);
// Fleet.Close still cleans them up.
func (n *FleetNode) Kill() { n.srv.Close() }

// Fleet is an in-process cluster of crserve nodes, used by the cluster
// tests, the P2 benchmark and cmd/crcluster. It is a real fleet in every
// sense but the process boundary: N listeners, N services, N ring views,
// HTTP between them.
type Fleet struct {
	Nodes []*FleetNode
}

// FleetOptions tunes StartFleet.
type FleetOptions struct {
	// Serve is the per-node handler config; Service and Cluster are
	// filled per node (a nil Service field means "new Service with a
	// 4096-entry cache per node", or NewService overrides).
	Serve Config
	// Cluster is the per-node cluster config; Self and Peers are filled
	// per node.
	Cluster cluster.Config
	// NewService builds each node's Service (default: fresh solver with a
	// 4096-entry cache).
	NewService func() *repro.Service
	// StartProbes launches each node's membership probe loop.
	StartProbes bool
}

// StartFleet starts n nodes wired into one cluster and returns once all
// listeners accept. Call Close when done.
func StartFleet(n int, opts FleetOptions) (*Fleet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("httpserve: fleet size %d", n)
	}
	newService := opts.NewService
	if newService == nil {
		newService = func() *repro.Service { return repro.NewService(nil, 4096) }
	}

	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for j := 0; j < i; j++ {
				listeners[j].Close()
			}
			return nil, fmt.Errorf("httpserve: fleet listener: %w", err)
		}
		listeners[i] = lis
		urls[i] = "http://" + lis.Addr().String()
	}

	f := &Fleet{Nodes: make([]*FleetNode, n)}
	for i := range f.Nodes {
		ccfg := opts.Cluster
		ccfg.Self = urls[i]
		ccfg.Peers = append([]string(nil), urls...)
		cl, err := cluster.New(ccfg)
		if err != nil {
			f.Close()
			return nil, err
		}
		scfg := opts.Serve
		scfg.Service = newService()
		scfg.Cluster = cl
		h := New(scfg)
		node := &FleetNode{
			URL: urls[i], Service: scfg.Service, Handler: h, Cluster: cl,
			srv: &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second},
			lis: listeners[i],
		}
		go node.srv.Serve(node.lis)
		if opts.StartProbes {
			cl.Start()
		}
		f.Nodes[i] = node
	}
	return f, nil
}

// URLs returns the node base URLs in fleet order.
func (f *Fleet) URLs() []string {
	out := make([]string, len(f.Nodes))
	for i, n := range f.Nodes {
		out[i] = n.URL
	}
	return out
}

// Close stops every node's probes, job workers and listener.
func (f *Fleet) Close() {
	for _, n := range f.Nodes {
		if n == nil {
			continue
		}
		n.Cluster.Stop()
		n.Handler.Close()
		n.srv.Close()
	}
}
