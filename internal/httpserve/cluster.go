package httpserve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/api"
	"repro/internal/cluster"
	"repro/internal/pool"
)

// forwarded reports whether the request already crossed an intra-cluster
// hop: it must then be served locally, whatever this node's ring view
// says, so ring disagreements can never bounce a request between peers.
func forwarded(r *http.Request) bool { return r.Header.Get(api.ForwardedHeader) != "" }

// maybeForward routes a fingerprint-keyed request to its ring owner when
// that owner is a peer, relaying the raw body verbatim. It returns true
// when a peer's response (success or authoritative error) was written.
// When every candidate is down it returns false and the caller serves
// locally — capacity degrades, correctness never does. hedge allows the
// next ring replica to be raced against a slow owner; callers with
// side effects that must not run twice (session open) disable it.
func (s *server) maybeForward(w http.ResponseWriter, r *http.Request, key string, body []byte, hedge bool) bool {
	cl := s.cfg.Cluster
	if cl == nil || forwarded(r) {
		return false
	}
	cands := cl.Plan(key)
	if len(cands) == 0 {
		return false
	}
	if !hedge {
		cands = cands[:1]
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	res, err := cl.Forward(ctx, cands, r.Method, r.URL.Path, body)
	if err != nil {
		// The request's own deadline (or the client) expired while the
		// forward was in flight: that is this request's timeout, not a
		// dead peer — answer it instead of restarting the whole budget
		// on a local solve.
		if ctx.Err() != nil {
			s.fail(w, ctx.Err())
			return true
		}
		cl.CountLocalFallback()
		return false
	}
	writeRaw(w, res)
	return true
}

// stampSelf marks a locally served response with this node's identity.
func (s *server) stampSelf(w http.ResponseWriter) {
	if cl := s.cfg.Cluster; cl != nil {
		w.Header().Set(api.ServedByHeader, cl.Self())
	}
}

// writeRaw relays a peer's verbatim response.
func writeRaw(w http.ResponseWriter, res cluster.ForwardResult) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set(api.ServedByHeader, res.Node)
	w.WriteHeader(res.Status)
	w.Write(res.Body)
}

// scatterBatch splits a batch by ring owner, fans the per-owner
// sub-batches out concurrently (locally owned items solve on this node's
// pool), and merges the answers preserving input order and per-item
// errors. Byte-identical duplicate items are deduplicated before
// grouping, so each duplicated instance crosses the wire at most once
// per batch and every duplicate index receives the representative's
// result; the owner's result cache dedupes the remaining (name-variant)
// repeats of one instance. A sub-batch whose owner cannot answer is
// re-solved locally.
func (s *server) scatterBatch(w http.ResponseWriter, r *http.Request, req *api.BatchRequest) {
	cl := s.cfg.Cluster
	cl.CountScatter()
	ctx, cancel := s.requestContext(r)
	defer cancel()

	items := req.Items
	resp := &api.BatchResponse{APIVersion: api.Version, Items: make([]api.BatchItem, len(items))}
	repOf := make([]int, len(items)) // representative index per item (-1: failed to parse)
	keyToRep := make(map[string]int) // dedup identity → representative index
	groups := make(map[string][]int) // primary owner ("" = local) → representative indices
	for i := range items {
		repOf[i] = i
		tree, err := items[i].Tree()
		if err != nil {
			resp.Items[i] = api.BatchItem{Error: api.FromError(err)}
			repOf[i] = -1
			continue
		}
		key := batchItemKey(&items[i])
		if j, ok := keyToRep[key]; ok {
			repOf[i] = j
			continue
		}
		keyToRep[key] = i
		var node string
		if cands := cl.Plan(repro.Fingerprint(tree)); len(cands) > 0 {
			node = cands[0]
		}
		groups[node] = append(groups[node], i)
	}

	var wg sync.WaitGroup
	for node, reps := range groups {
		if node == "" {
			continue
		}
		wg.Add(1)
		go func(node string, reps []int) {
			defer wg.Done()
			s.forwardSubBatch(ctx, node, reps, items, resp.Items)
		}(node, reps)
	}
	if reps := groups[""]; len(reps) > 0 {
		s.solveGroupLocally(ctx, reps, items, resp.Items)
	}
	wg.Wait()

	for i := range resp.Items {
		if j := repOf[i]; j >= 0 && j != i {
			resp.Items[i] = resp.Items[j]
		}
	}
	if err := ctx.Err(); err != nil {
		for i := range resp.Items {
			if resp.Items[i].Response == nil && resp.Items[i].Error == nil {
				resp.Items[i].Error = api.FromError(err)
			}
		}
	}
	s.stampSelf(w)
	writeJSON(w, http.StatusOK, resp)
}

// forwardSubBatch sends one owner's items as a hop-guarded sub-batch and
// writes the answers back into out at the original indices; any failure
// (transport, non-200, malformed or mis-sized reply) falls back to
// solving the group locally.
func (s *server) forwardSubBatch(ctx context.Context, node string, reps []int, items []api.SolveRequest, out []api.BatchItem) {
	cl := s.cfg.Cluster
	sub := api.BatchRequest{Items: make([]api.SolveRequest, len(reps))}
	for k, i := range reps {
		sub.Items[k] = items[i]
	}
	if body, err := json.Marshal(&sub); err == nil {
		if res, err := cl.Forward(ctx, []string{node}, http.MethodPost, "/v1/batch", body); err == nil && res.Status == http.StatusOK {
			var sr api.BatchResponse
			if json.Unmarshal(res.Body, &sr) == nil && len(sr.Items) == len(reps) {
				for k, i := range reps {
					out[i] = sr.Items[k]
				}
				return
			}
		}
	}
	// On batch-context expiry the local pass below marks the items
	// cancelled — that is the request timing out, not a dead owner.
	if ctx.Err() == nil {
		cl.CountLocalFallback()
	}
	s.solveGroupLocally(ctx, reps, items, out)
}

func (s *server) solveGroupLocally(ctx context.Context, reps []int, items []api.SolveRequest, out []api.BatchItem) {
	pool.Run(ctx, len(reps), s.cfg.BatchParallelism, func(k int) {
		i := reps[k]
		out[i] = s.solveItem(ctx, &items[i])
	})
}

// batchItemKey is the scatter-gather dedup identity: the re-marshalled
// wire item. Dedup must be name-sensitive — the instance fingerprint is
// deliberately name-invariant (that is what makes routing and the
// result cache shareable), but a SolveResponse carries node and
// satellite *names*, so only byte-identical items may share one
// representative's response verbatim. Name-variant duplicates of one
// instance still route to the same owner, whose result cache dedupes
// the actual solving and remaps names per tree.
func batchItemKey(it *api.SolveRequest) string {
	b, err := json.Marshal(it)
	if err != nil {
		// Unreachable (the item was just decoded from JSON); an unkeyable
		// item simply never dedupes.
		return fmt.Sprintf("%p", it)
	}
	return string(b)
}

// ownerRouted steers ID-pinned calls — sessions and jobs, whose IDs are
// minted as "<node tag>-<random>" by their owner — to the node the ID
// names: a GET answers 307 (the client can talk to the owner directly
// from then on), mutating calls are proxied with the hop guard. Unknown
// tags fall through to the local lookup's not_found; an unreachable
// owner answers CodeUnavailable — the pinned state (a session's warm
// tree, a job's progress ring) lives only there, so no other node can
// serve it.
//
// Relocation tombstones take precedence over the ID's tag: a session
// this node pushed to a new owner during a membership change keeps
// resolving here, as a redirect or proxy to the adopter. Tombstones live
// only on the old owner — a third node still routes by tag and the old
// owner re-routes — so clients keep their one-redirect contract as long
// as they talk to the node that answered them last.
func (s *server) ownerRouted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		cl := s.cfg.Cluster
		if cl == nil || forwarded(r) {
			h(w, r)
			return
		}
		id := r.PathValue("id")
		if dest := s.relocatedTo(id); dest != "" {
			s.routeTo(w, r, id, dest)
			return
		}
		// An adopted session lives here now even though its tag names its
		// original creator — serve it directly, no hop through the
		// departed node's tombstone. (Job IDs never enter the session
		// table; they fall through to tag routing.)
		if s.hasSession(id) {
			h(w, r)
			return
		}
		tag, _, ok := strings.Cut(id, "-")
		if !ok || tag == cl.SelfTag() {
			h(w, r)
			return
		}
		node, known := cl.NodeByTag(tag)
		if !known {
			h(w, r)
			return
		}
		s.routeTo(w, r, id, node)
	}
}

// routeTo sends an ID-pinned call to the node holding its state: GETs
// redirect, mutating calls proxy with the hop guard.
func (s *server) routeTo(w http.ResponseWriter, r *http.Request, id, node string) {
	cl := s.cfg.Cluster
	if r.Method == http.MethodGet {
		cl.CountRedirect()
		w.Header().Set("Location", node+r.URL.Path)
		w.WriteHeader(http.StatusTemporaryRedirect)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.fail(w, &api.Error{Code: api.CodeInvalidRequest, Message: "reading request body: " + err.Error()})
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	cl.CountProxiedSession()
	res, ferr := cl.Forward(ctx, []string{node}, r.Method, r.URL.Path, body)
	if ferr != nil {
		if ctx.Err() != nil {
			s.fail(w, ctx.Err())
			return
		}
		s.fail(w, &api.Error{
			Code:    api.CodeUnavailable,
			Message: fmt.Sprintf("owner %s unreachable", node),
			Details: map[string]string{"id": id, "owner": node},
		})
		return
	}
	writeRaw(w, res)
}

// clusterDoc builds the fleet introspection document. Epoch and Members
// are the authoritative view peers adopt through the gossip pull, so
// they must describe the routing ring — not the membership snapshot,
// which on a draining node still lists this (voted-out) node.
func (s *server) clusterDoc() *api.ClusterResponse {
	resp := &api.ClusterResponse{APIVersion: api.Version}
	cl := s.cfg.Cluster
	if cl == nil {
		return resp
	}
	resp.Enabled = true
	resp.Self = cl.Self()
	resp.Epoch = cl.Epoch()
	resp.Members = cl.Members()
	resp.VirtualNodes = cl.VirtualNodes()
	now := time.Now()
	for _, n := range cl.Snapshot() {
		state := n.State
		if n.Self && s.draining.Load() {
			state = cluster.StateDraining
		}
		node := api.ClusterNode{ID: n.ID, Tag: n.Tag, Self: n.Self, State: state.String(), Failures: n.Failures}
		if !n.StateSince.IsZero() {
			node.StateSinceMS = now.Sub(n.StateSince).Milliseconds()
		}
		if !n.Self {
			if n.LastSeen.IsZero() {
				node.LastSeenMS = -1
			} else {
				node.LastSeenMS = now.Sub(n.LastSeen).Milliseconds()
			}
		}
		resp.Nodes = append(resp.Nodes, node)
	}
	st := cl.Stats()
	resp.Stats = map[string]int64{
		"forwards":         st.Forwards,
		"forward_failures": st.ForwardFailures,
		"hedges":           st.Hedges,
		"local_fallbacks":  st.LocalFallbacks,
		"scatter_batches":  st.ScatterBatches,
		"redirects":        st.Redirects,
		"proxied_sessions": st.ProxiedSessions,
		"probes":           st.Probes,
		"probe_failures":   st.ProbeFailures,
	}
	return resp
}

// handleCluster serves the fleet introspection document.
//
//	GET /v1/cluster
func (s *server) handleCluster(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.clusterDoc())
}
